#pragma once
// Continuous cross-request batching: the collect stage between admission
// and the worker pool.
//
// Workers used to pop one job at a time; under concurrent load the same
// pooled adjacency operands were streamed once per request. The scheduler
// instead groups queued jobs by fusion-compatibility key — the pair
// (plan_signature, dataset_fingerprint) — and releases a whole group as one
// batch, which the runtime executes as fused multi-feature sweeps
// (RuntimeSystem::execute_batch): one pass over each shared adjacency
// tile feeds every member's accumulator. Members of a group may run
// *different models and weights* (different CompileKeys); equal keys only
// promise identical task grids and content-equal datasets, which — with
// the operand tile pool on — means pointer-equal pooled operands, the
// structural precondition for a shared sweep.
//
// Collection policy (BatchPolicy): hold a group open until it reaches
// `max_batch` members OR `window_us` microseconds have passed since its
// first member arrived, whichever comes first. Both zero (the default)
// disables collection entirely: next_batch() degenerates to a plain
// blocking pop and the service behaves exactly as before this layer
// existed — no key computation, no added latency.
//
// Concurrency: any number of workers may call next_batch() on one
// scheduler. Groups live under a mutex; blocking queue waits happen
// outside it. A worker holding no ripe group parks in a deadline wait on
// the queue (BlockingQueue::pop_until) so a group's window expiry wakes
// it even if no further jobs arrive. One bounded-staleness case exists:
// if the worker watching a young group returns early with a different
// K-full batch, the young group is picked up when any worker next calls
// next_batch() — delayed by at most one batch's processing time, never
// dropped. Queue close flushes remaining groups one batch per call, then
// next_batch() returns false.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <mutex>
#include <utility>
#include <vector>

#include "util/blocking_queue.hpp"
#include "util/ordered_mutex.hpp"

namespace dynasparse {

struct GnnModel;
struct Dataset;
struct SimConfig;

/// Fusion-compatibility key: the compiled programs have the same
/// partition plan + kernel task grids (plan component) and the same
/// dataset content, hence shared pooled adjacency operands (dataset
/// component). The dataset half is the bounded-work dataset_fingerprint,
/// not the full content hash — the scheduler keys every queued job, and
/// dataset_signature's full array walk costs milliseconds on the larger
/// graphs (it would have doubled the service's per-request hashing). A
/// fingerprint collision merely groups incompatible members: the runtime
/// fuses only pointer-equal pooled operands, so they fall back to the
/// flat loop and still execute bit-identically. See
/// compiler/signature.hpp for what each hash covers.
struct BatchKey {
  std::uint64_t plan = 0;
  std::uint64_t dataset = 0;

  bool operator==(const BatchKey& o) const {
    return plan == o.plan && dataset == o.dataset;
  }
  bool operator!=(const BatchKey& o) const { return !(*this == o); }
};

/// Key of one service request: plan_signature of (model, |V|, config)
/// paired with dataset_fingerprint. Lives in batch_scheduler.cpp so this
/// header stays free of the model/dataset/signature includes.
BatchKey make_batch_key(const GnnModel& model, const Dataset& dataset,
                        const SimConfig& config);

/// Collection policy. Defaults mean "off".
struct BatchPolicy {
  /// Hold a group open this long after its first member arrives before
  /// releasing it. 0 = release as soon as the queue is momentarily empty
  /// (opportunistic batching of already-queued bursts only).
  std::int64_t window_us = 0;
  /// Release a group the moment it reaches this many members. 0 with a
  /// positive window = unlimited (window alone decides); the value 1
  /// with window 0 is equivalent to the defaults.
  std::size_t max_batch_size = 0;

  bool enabled() const { return window_us > 0 || max_batch_size > 1; }
  std::size_t effective_max() const {
    return max_batch_size == 0 ? std::numeric_limits<std::size_t>::max()
                               : max_batch_size;
  }
};

/// Groups jobs popped from `queue` by KeyFn and releases them in batches
/// per BatchPolicy. Job is the service's queue element; the scheduler
/// only needs it movable. Not a queue replacement: admission still pushes
/// to the BlockingQueue (backpressure, shedding and close semantics are
/// unchanged); this sits on the consumer side only.
template <typename Job>
class BatchScheduler {
 public:
  using Clock = std::chrono::steady_clock;
  using KeyFn = std::function<BatchKey(const Job&)>;

  BatchScheduler(BlockingQueue<Job>& queue, BatchPolicy policy, KeyFn key)
      : queue_(queue), policy_(policy), key_(std::move(key)) {}

  BatchScheduler(const BatchScheduler&) = delete;
  BatchScheduler& operator=(const BatchScheduler&) = delete;

  const BatchPolicy& policy() const { return policy_; }

  /// Block until a batch is ready; fill `out` (cleared first) with its
  /// members in arrival order and return true. Returns false only when
  /// the queue is closed, drained, and no collected group remains —
  /// pending groups are flushed (one batch per call) before that.
  bool next_batch(std::vector<Job>& out) {
    out.clear();
    if (!policy_.enabled()) {
      Job job;
      if (!queue_.pop(job)) return false;
      out.push_back(std::move(job));
      return true;
    }
    for (;;) {
      // Drain whatever is immediately available into keyed groups; a
      // group that reaches the K cutoff releases at once.
      {
        Job job;
        while (queue_.try_pop(job)) {
          if (add_job(std::move(job), out)) return true;
        }
      }
      // Release the oldest group whose window has expired (window 0:
      // every non-empty group is instantly ripe).
      Clock::time_point earliest{};
      bool have_pending = false;
      {
        std::lock_guard<OrderedMutex> lk(mu_);
        std::size_t ripe = groups_.size();
        const Clock::time_point now = Clock::now();
        for (std::size_t i = 0; i < groups_.size(); ++i) {
          const Clock::time_point deadline =
              groups_[i].formed_at + std::chrono::microseconds(policy_.window_us);
          if (deadline <= now) {
            if (ripe == groups_.size() ||
                groups_[i].formed_at < groups_[ripe].formed_at) {
              ripe = i;
            }
          }
          if (!have_pending || deadline < earliest) {
            earliest = deadline;
            have_pending = true;
          }
        }
        if (ripe != groups_.size()) {
          take_group_locked(ripe, out);
          return true;
        }
      }
      // Nothing ripe: park on the queue — until the earliest pending
      // group's window expires, or indefinitely when no group is open.
      Job job;
      if (!have_pending) {
        if (!queue_.pop(job)) return flush_one(out);
        if (add_job(std::move(job), out)) return true;
      } else {
        using Q = BlockingQueue<Job>;
        const typename Q::PopResult r = queue_.pop_until(job, earliest);
        if (r == Q::PopResult::kOk) {
          if (add_job(std::move(job), out)) return true;
        } else if (r == Q::PopResult::kClosed) {
          return flush_one(out);
        }
        // kTimeout: loop; the ripe scan above will release the group.
      }
    }
  }

 private:
  struct Group {
    BatchKey key;
    Clock::time_point formed_at;
    std::vector<Job> jobs;
  };

  /// File `job` under its key; if the group reaches the K cutoff, move it
  /// into `out` and return true.
  bool add_job(Job&& job, std::vector<Job>& out) {
    const BatchKey key = key_(job);
    std::lock_guard<OrderedMutex> lk(mu_);
    std::size_t gi = groups_.size();
    for (std::size_t i = 0; i < groups_.size(); ++i) {
      if (groups_[i].key == key) {
        gi = i;
        break;
      }
    }
    if (gi == groups_.size()) {
      groups_.push_back(Group{key, Clock::now(), {}});
    }
    groups_[gi].jobs.push_back(std::move(job));
    if (groups_[gi].jobs.size() >= policy_.effective_max()) {
      take_group_locked(gi, out);
      return true;
    }
    return false;
  }

  void take_group_locked(std::size_t gi, std::vector<Job>& out) {
    out = std::move(groups_[gi].jobs);
    groups_.erase(groups_.begin() + static_cast<std::ptrdiff_t>(gi));
  }

  /// Queue closed and drained: release the oldest remaining group, or
  /// report end-of-stream.
  bool flush_one(std::vector<Job>& out) {
    std::lock_guard<OrderedMutex> lk(mu_);
    if (groups_.empty()) return false;
    std::size_t oldest = 0;
    for (std::size_t i = 1; i < groups_.size(); ++i) {
      if (groups_[i].formed_at < groups_[oldest].formed_at) oldest = i;
    }
    take_group_locked(oldest, out);
    return true;
  }

  BlockingQueue<Job>& queue_;
  const BatchPolicy policy_;
  KeyFn key_;

  OrderedMutex mu_{LockRank::kBatchGroups};
  std::vector<Group> groups_;  // few distinct keys at once: linear scan
};

}  // namespace dynasparse
