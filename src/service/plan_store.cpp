#include "service/plan_store.hpp"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "service/errors.hpp"
#include "util/fault_injection.hpp"
#include "util/logging.hpp"
#include "util/strict_parse.hpp"
#include "util/stopwatch.hpp"

namespace dynasparse {

namespace {

/// Fixed-width hex rendering shared by file names and the irsig trailer.
std::string hex16(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

/// Approximate host bytes of a memory-tier snapshot: the kernel IRs and
/// the plan are small fixed-size structs; this feeds the budget tier, so
/// coarse is fine as long as it is monotone in entry count.
std::size_t stored_plan_bytes(const StoredPlan& p) {
  return sizeof(StoredPlan) + p.snap.kernels.size() * sizeof(KernelIR);
}

}  // namespace

bool plan_snapshot_compatible(const IrSnapshot& snap, const GnnModel& model,
                              std::int64_t num_vertices) {
  if (snap.kernels.size() != model.kernels.size()) return false;
  for (std::size_t i = 0; i < snap.kernels.size(); ++i) {
    const KernelIR& k = snap.kernels[i];
    const KernelSpec& live = model.kernels[i];
    if (k.spec.kind != live.kind || k.spec.out_dim != live.out_dim) return false;
    if (k.num_vertices != num_vertices) return false;
  }
  return true;
}

PlanStore::PlanStore(PlanStoreOptions options)
    : options_(std::move(options)),
      impl_(options_.capacity, 0, stored_plan_bytes, options_.tier,
            LockRank::kPlanStore) {
  if (!options_.dir.empty() && enabled()) {
    std::error_code ec;
    std::filesystem::create_directories(options_.dir, ec);
    disk_ok_ = !ec && std::filesystem::is_directory(options_.dir, ec) && !ec;
    if (!disk_ok_) {
      log_warn("PlanStore: cannot use disk tier at \"", options_.dir,
               "\"; continuing memory-only");
      std::lock_guard<OrderedMutex> lk(side_mu_);
      ++disk_errors_;
    }
  }
}

std::string PlanStore::disk_path(std::uint64_t key) const {
  return (std::filesystem::path(options_.dir) / ("plan-" + hex16(key) + ".ir"))
      .string();
}

std::shared_ptr<const StoredPlan> PlanStore::load_disk(std::uint64_t key) {
  const std::string path = disk_path(key);
  if (fault_point(kFaultPlanStoreDiskRead)) {
    // Chaos site: an unreadable snapshot degrades exactly like a corrupt
    // one — count it, re-plan, never fail the request.
    log_warn("PlanStore: injected disk-read fault for ", path, "; re-planning");
    std::lock_guard<OrderedMutex> lk(side_mu_);
    ++disk_errors_;
    return nullptr;
  }
  std::ifstream in(path);
  if (!in) return nullptr;  // no snapshot for this signature yet
  try {
    auto plan = std::make_shared<StoredPlan>();
    plan->snap = read_ir(in);
    // Integrity trailer: the recorded ir_signature must match the
    // re-hashed content, so a truncated-but-parseable or hand-edited
    // snapshot is detected instead of silently seeding compilations.
    std::string line, word, hex;
    if (!std::getline(in, line)) throw PlanSnapshotError("missing irsig trailer");
    std::istringstream is(line);
    is >> word >> hex;
    if (word != "irsig" || hex.size() != 16)
      throw PlanSnapshotError("bad irsig trailer");
    const std::uint64_t recorded = strict_hex_u64(hex);
    plan->ir_sig = ir_signature(plan->snap.kernels, plan->snap.plan);
    if (plan->ir_sig != recorded)
      throw PlanSnapshotError("irsig mismatch (corrupt snapshot)");
    return plan;
  } catch (const std::exception& e) {
    log_warn("PlanStore: ignoring disk snapshot ", path, ": ", e.what());
    std::lock_guard<OrderedMutex> lk(side_mu_);
    ++disk_errors_;
    return nullptr;
  }
}

void PlanStore::store_disk(std::uint64_t key, const StoredPlan& plan) {
  // Write-then-rename so a concurrent reader (another serving process
  // sharing the directory) never observes a torn file. The tmp name is
  // unique per process AND per write: two processes (or two stores in
  // one process) racing on the same key must not interleave into one tmp
  // file and rename garbage into place.
  static std::atomic<std::uint64_t> write_seq{0};
  const std::string path = disk_path(key);
  if (fault_point(kFaultPlanStoreDiskWrite)) {
    // Chaos site: a failed persist costs only re-planning after the next
    // restart — count it and move on, same as a real write error below.
    log_warn("PlanStore: injected disk-write fault for ", path);
    std::lock_guard<OrderedMutex> lk(side_mu_);
    ++disk_errors_;
    return;
  }
  const std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                          std::to_string(write_seq.fetch_add(1));
  bool ok = false;
  {
    std::ofstream out(tmp);
    if (out) {
      write_ir(plan.snap, out);
      out << "irsig " << hex16(plan.ir_sig) << '\n';
      ok = static_cast<bool>(out);
    }
  }
  std::error_code ec;
  if (ok) {
    std::filesystem::rename(tmp, path, ec);
    ok = !ec;
  }
  std::lock_guard<OrderedMutex> lk(side_mu_);
  if (ok) {
    ++disk_writes_;
  } else {
    ++disk_errors_;
    std::filesystem::remove(tmp, ec);
  }
}

std::shared_ptr<const StoredPlan> PlanStore::get_or_plan(
    std::uint64_t key, const GnnModel& model, const Dataset& ds,
    const SimConfig& cfg, bool* planned_here, const CancellationToken& token) {
  bool here = false;
  auto plan = impl_.get_or_make(key, [&]() -> std::shared_ptr<const StoredPlan> {
    if (disk_ok_) {
      if (auto loaded = load_disk(key)) {
        // Validate against the live inputs BEFORE the snapshot becomes
        // the resident entry for this key: an intact-but-incompatible
        // file (stale signature definition, misnamed snapshot) must be
        // replanned and overwritten here — caching it would pin the
        // rejection for the process lifetime and leave the bad file to
        // poison every restart.
        if (plan_snapshot_compatible(loaded->snap, model, ds.graph.num_vertices())) {
          std::lock_guard<OrderedMutex> lk(side_mu_);
          ++disk_hits_;
          return loaded;
        }
        log_warn("PlanStore: disk snapshot ", disk_path(key),
                 " does not match the live planner inputs; re-planning");
        std::lock_guard<OrderedMutex> lk(side_mu_);
        ++rejected_;
      }
    }
    // Plan from scratch: the one place the seeded pipeline runs the
    // partition planner — through the same build_computation_graph /
    // planner_workloads / plan_partitions / attach_scheme functions as
    // compile_impl, so the stored plan is exactly what a cold compile of
    // these inputs computes.
    here = true;
    auto made = std::make_shared<StoredPlan>();
    made->snap.kernels = build_computation_graph(model, ds.graph);
    std::vector<KernelWorkload> workloads = planner_workloads(made->snap.kernels);
    Stopwatch sw;
    made->snap.plan = plan_partitions(workloads, cfg, token);
    const double plan_ms = sw.elapsed_ms();
    for (KernelIR& k : made->snap.kernels)
      attach_scheme(k, made->snap.plan.n1, made->snap.plan.n2);
    made->ir_sig = ir_signature(made->snap.kernels, made->snap.plan);
    {
      std::lock_guard<OrderedMutex> lk(side_mu_);
      ++planned_;
      planning_ms_ += plan_ms;
    }
    if (disk_ok_) store_disk(key, *made);
    return made;
  });
  if (planned_here) *planned_here = here;
  return plan;
}

CompiledProgram PlanStore::compile_seeded(const GnnModel& model, const Dataset& ds,
                                          const SimConfig& cfg,
                                          const CancellationToken& token,
                                          const OperandSource& operands) {
  if (!enabled()) return compile(model, ds, cfg, token, operands);
  // compile_impl validates the config BEFORE planning; this path must
  // too. An invalid config (psys = 0, dense_elem_bytes = 0) would SIGFPE
  // inside the planner's divisions — a signal no catch turns back into
  // the std::invalid_argument the cold path throws, killing the whole
  // service instead of failing one request in isolation.
  if (!cfg.valid()) return compile(model, ds, cfg, token, operands);
  std::shared_ptr<const StoredPlan> plan;
  bool planned_here = false;
  try {
    plan = get_or_plan(plan_signature(model, ds.graph.num_vertices(), cfg), model,
                       ds, cfg, &planned_here, token);
  } catch (const RequestAbortedError&) {
    // The request's own cancellation/deadline fired mid-planning: not a
    // store failure — nobody will consume a cold compile, so propagate.
    throw;
  } catch (...) {
    // Invalid inputs (or an allocation failure mid-planning): let the
    // cold path produce its canonical diagnostics.
    return compile(model, ds, cfg, token, operands);
  }
  if (!plan_snapshot_compatible(plan->snap, model, ds.graph.num_vertices())) {
    // Signature collision or a stale/foreign snapshot that still carried a
    // valid irsig: never seed from it. Cold-compile instead; correctness
    // costs only the skipped amortization.
    {
      std::lock_guard<OrderedMutex> lk(side_mu_);
      ++rejected_;
    }
    return compile(model, ds, cfg, token, operands);
  }
  CompiledProgram prog =
      compile_with_plan(model, ds, cfg, plan->snap.plan, token, operands);
  if (!planned_here) {
    // This compile skipped the planner: it was seeded by a plan some
    // earlier request (or a previous process, via the disk tier) paid for.
    std::lock_guard<OrderedMutex> lk(side_mu_);
    ++seeded_;
    // Exact vs similar reuse, observable per store: a restarted service
    // replaying the same content reproduces the stored IR bit-for-bit
    // (ir_signature equal); a merely plan-compatible request differs in
    // the fields outside the plan (e.g. num_edges).
    if (ir_signature(prog.kernels, prog.plan) == plan->ir_sig) ++seeded_exact_;
  }
  return prog;
}

PlanStoreStats PlanStore::stats() const {
  const KeyedCacheStats s = impl_.stats();
  PlanStoreStats out;
  out.hits = s.hits;
  out.misses = s.misses;
  out.inflight_joins = s.inflight_joins;
  out.entries = s.entries;
  out.evictions = s.evictions;
  out.bytes = s.bytes;
  std::lock_guard<OrderedMutex> lk(side_mu_);
  out.planned = planned_;
  out.seeded = seeded_;
  out.seeded_exact = seeded_exact_;
  out.rejected = rejected_;
  out.disk_hits = disk_hits_;
  out.disk_writes = disk_writes_;
  out.disk_errors = disk_errors_;
  out.planning_ms = planning_ms_;
  return out;
}

}  // namespace dynasparse
