#pragma once
// InferenceService — multi-request serving layer over the DynaSparse
// pipeline.
//
// The engine's run_inference() is one-shot: compile, execute, discard.
// A serving workload issues many (model, dataset, options) requests, most
// of which repeat recent compilations; this service amortizes that
// preprocessing the same way the paper amortizes sparsity profiling —
// compile once per *content* (compiler/signature.hpp keys), reuse across
// every request that matches, and execute requests concurrently with
// per-request isolation (a CompiledProgram is immutable after compile and
// execute() never mutates shared state, so many requests may share one
// program; see the re-entrancy note in runtime/runtime_system.hpp).
//
// Three usage shapes:
//   async    : id = svc.submit(req); ... svc.done(id); rep = svc.wait(id);
//   batch    : reports = svc.run_batch(requests);        // blocking, ordered
//   inline   : rep = svc.run_one(model, ds, options);    // calling thread;
//              this is what core/engine.hpp's run_inference routes through
//
// Concurrency model: `workers` dedicated threads consume a queue
// (util/blocking_queue.hpp). Each worker runs its request under
// ParallelInlineScope, so intra-request parallel_for chunks execute
// serially on that worker and the PR-1 persistent pool's job slot is
// never a cross-request bottleneck; throughput comes from inter-request
// concurrency. Reports are bit-identical to sequential run_inference for
// the deterministic fields (everything except the wall-clock CompileStats,
// which a cache hit reuses from the original compile) because every
// parallel primitive is thread-count-invariant by construction.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/engine.hpp"
#include "service/compilation_cache.hpp"
#include "util/blocking_queue.hpp"

namespace dynasparse {

/// One unit of serving work. The model/dataset are shared immutable
/// inputs; requests are cheap to copy and queue.
struct ServiceRequest {
  std::shared_ptr<const GnnModel> model;
  std::shared_ptr<const Dataset> dataset;
  EngineOptions options;

  /// Take ownership of the inputs (moves them onto the heap).
  static ServiceRequest own(GnnModel model, Dataset dataset,
                            EngineOptions options = {});
  /// Alias caller-owned inputs without copying. The caller must keep them
  /// alive and unmodified until the request completes.
  static ServiceRequest borrow(const GnnModel& model, const Dataset& dataset,
                               const EngineOptions& options = {});
};

enum class RequestState { kQueued, kRunning, kDone, kFailed };
using RequestId = std::uint64_t;

/// Per-request wall-clock breakdown (steady clock, milliseconds).
struct RequestTiming {
  double queue_ms = 0.0;  // submit -> worker pickup
  double exec_ms = 0.0;   // pickup -> completion (includes compile/cache)
  double total_ms = 0.0;  // submit -> completion
};

struct ServiceOptions {
  /// Worker threads for submitted requests. 0 = hardware concurrency
  /// (capped at 16). Workers spawn lazily on first submit; run_one never
  /// spawns any.
  int workers = 0;
  /// CompilationCache capacity (programs). 0 disables caching.
  std::size_t cache_capacity = 16;
  /// Run each request's internal parallel loops inline on its worker
  /// (recommended; see header comment). false lets requests fan out on
  /// the shared pool — they then serialize on its job slot.
  bool inline_intra_op = true;
};

class InferenceService {
 public:
  explicit InferenceService(ServiceOptions options = {});
  /// Blocks until every submitted request has completed (the queue drains
  /// before workers exit), then joins the workers.
  ~InferenceService();

  InferenceService(const InferenceService&) = delete;
  InferenceService& operator=(const InferenceService&) = delete;

  /// Enqueue a request; returns immediately. Throws std::invalid_argument
  /// on a null model/dataset.
  RequestId submit(ServiceRequest request);

  /// Poll. Throws std::invalid_argument for an unknown (or already
  /// consumed) id.
  RequestState state(RequestId id) const;
  bool done(RequestId id) const;  // kDone or kFailed

  /// Block until the request completes, then consume its slot: returns the
  /// report (optionally the timing), or rethrows the request's exception.
  /// Each id can be waited on exactly once.
  InferenceReport wait(RequestId id, RequestTiming* timing = nullptr);

  /// Submit all, wait all; reports come back in request order. If any
  /// request failed, every other request still completes, then the first
  /// failure (in request order) is rethrown.
  std::vector<InferenceReport> run_batch(std::vector<ServiceRequest> requests);

  /// Execute one request synchronously on the calling thread through the
  /// shared cache + execution path (no queue, no workers).
  InferenceReport run_one(const GnnModel& model, const Dataset& ds,
                          const EngineOptions& options = {});

  CompilationCache& cache() { return cache_; }
  CacheStats cache_stats() const { return cache_.stats(); }
  const ServiceOptions& options() const { return options_; }

  /// Process-wide service backing core/engine.hpp's run_inference. Its
  /// cache capacity defaults to 4 programs; override with the
  /// DYNASPARSE_ENGINE_CACHE environment variable (0 disables caching and
  /// restores the pre-service always-recompile behavior).
  static InferenceService& process_default();

 private:
  struct Job {
    RequestId id = 0;
    ServiceRequest request;
  };
  struct Slot {
    RequestState state = RequestState::kQueued;
    InferenceReport report;
    std::exception_ptr error;
    std::chrono::steady_clock::time_point submitted, started, finished;
  };

  InferenceReport execute_request(const ServiceRequest& request);
  void ensure_workers();
  void worker_main();

  const ServiceOptions options_;
  CompilationCache cache_;
  BlockingQueue<Job> queue_;

  mutable std::mutex slots_mu_;
  std::condition_variable slots_cv_;
  std::unordered_map<RequestId, Slot> slots_;
  RequestId next_id_ = 1;

  std::mutex workers_mu_;
  std::vector<std::thread> workers_;
};

}  // namespace dynasparse
