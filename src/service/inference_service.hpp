#pragma once
// InferenceService — multi-request serving layer over the DynaSparse
// pipeline.
//
// The engine's run_inference() is one-shot: compile, execute, discard.
// A serving workload issues many (model, dataset, options) requests, most
// of which repeat recent compilations; this service amortizes that
// preprocessing the same way the paper amortizes sparsity profiling —
// compile once per *content* (compiler/signature.hpp keys), reuse across
// every request that matches, and execute requests concurrently with
// per-request isolation (a CompiledProgram is immutable after compile and
// execute() never mutates shared state, so many requests may share one
// program; see the re-entrancy note in runtime/runtime_system.hpp).
//
// Three usage shapes:
//   async    : id = svc.submit(req); ... svc.done(id); rep = svc.wait(id);
//   batch    : reports = svc.run_batch(requests);        // blocking, ordered
//   inline   : rep = svc.run_one(model, ds, options);    // calling thread;
//              this is what core/engine.hpp's run_inference routes through
//
// Concurrency model: `workers` dedicated threads consume a queue
// (util/blocking_queue.hpp), and each request's internal parallel loops
// fan out on the shared work-stealing pool (util/parallel.hpp). The pool
// runs any number of jobs concurrently, so inter-request and intra-request
// parallelism compose: a lone big request spreads across every idle core
// while small requests overlap on the same worker set, instead of each
// request being pinned to one thread. ServiceOptions::intra_op_threads
// bounds one request's fan-out: execute_request installs a
// ParallelMaxThreadsScope (combining it with the request's own
// RuntimeOptions::host_threads, tighter bound wins) that covers compile +
// execute, clamping what every parallel call under it — including
// runtime_system.cpp's hot loops — resolves its thread count to; 1
// restores the serial-per-worker behavior this service shipped with. Reports are bit-identical to
// sequential run_inference for the deterministic fields (everything except
// the wall-clock CompileStats, which a cache hit reuses from the original
// compile) because every parallel primitive is thread-count-invariant by
// construction.
//
// Result memoization (ServiceOptions::result_cache_capacity): the whole
// pipeline is deterministic, so a request whose ResultKey — compile
// content plus every RuntimeOptions field (compiler/signature.hpp) —
// matches a cached entry returns the stored InferenceReport without
// executing; deterministic report fields are bit-identical to a fresh
// run by the determinism contract the golden/property tests enforce.
// Off by default.
//
// Continuous batching (ServiceOptions::batch_window_us /
// max_batch_size): workers dequeue through a BatchScheduler
// (service/batch_scheduler.hpp) that groups queued requests by
// (plan_signature, dataset_signature) under a collect-for-a-window-or-K
// policy and executes each group as ONE fused multi-feature batch
// (RuntimeSystem::execute_batch): the group's shared pooled adjacency
// operands stream once per kernel for every member instead of once per
// request. Fusion is invisible in results — each member's report is
// bit-identical to solo execution, deterministic_fingerprint() included —
// and invisible to the robustness surface: cancellation, deadlines and
// injected faults fail exactly the affected member, never a batchmate.
// Both knobs 0 (the default) keeps the pre-batching one-job-at-a-time
// behavior. batch_stats() reports formation and fusion counters.
//
// Admission control (ServiceOptions::max_queue_depth + admission): a
// bounded queue gives submit() backpressure under overload — block the
// submitter, fail fast (AdmissionRejectedError through wait()), or shed
// the oldest queued requests. try_submit() is the non-blocking,
// non-throwing variant. All three policies compose with shutdown(): a
// blocked submit wakes and resolves cleanly when the queue closes.
//
// Deadlines + cancellation: a request may carry a relative deadline
// (ServiceRequest::deadline_ms; ServiceOptions::default_deadline_ms and
// DYNASPARSE_DEADLINE_MS supply a service-wide default) and may be
// aborted with cancel(id). Both resolve through one per-slot
// CancellationSource (util/cancellation.hpp) whose token is threaded
// down the compile/execute pipeline and checked at stage, planner-loop,
// and kernel boundaries. A queued request whose deadline passes is
// failed at dequeue with DeadlineExceededError before any compile work
// (the expired_in_queue stat counts these); a running one aborts at the
// next check. Aborts only ever abort: a request that completes is
// bit-identical to an uncancellable run. Errors surface through wait()
// as a small typed taxonomy — CancelledError, DeadlineExceededError,
// AdmissionRejectedError, ExecutionError (everything else, message
// preserved) — with input-validation failures still thrown directly by
// submit()/run_batch() as std::invalid_argument.
//
// Fault injection: ServiceOptions::fault_spec (or DYNASPARSE_FAULT_SPEC)
// arms the process-global chaos injector (util/fault_injection.hpp).
// Failures in the optional tiers — plan-store disk, result memoization
// in-flight dedup — degrade (re-plan, retry, cold path) with a logged
// counter instead of failing the request; only faults in the request's
// own compile/execute fail that one request, typed, in isolation.
//
// Shutdown contract: shutdown() (also run by the destructor) stops
// accepting submits (a racing submit() throws ShutdownError and
// leaves no slot behind), fails every still-queued slot with
// CancelledError and cancels every running request's token (abort, not
// drain — a stale queue is worthless once the service is going away),
// joins the workers, fails any slot that never reached a terminal state,
// wakes every waiter, and then blocks until every in-flight wait() and
// submit() has finished — no caller is left inside the object once
// shutdown() returns. Racing submit()/wait() against shutdown() is
// therefore fully safe; racing them against the *destructor*
// additionally requires the usual C++ lifetime rule that no call starts
// after destruction has begun.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/engine.hpp"
#include "service/batch_scheduler.hpp"
#include "service/compilation_cache.hpp"
#include "service/result_cache.hpp"
#include "util/blocking_queue.hpp"
#include "service/errors.hpp"
#include "util/cancellation.hpp"
#include "util/ordered_mutex.hpp"

namespace dynasparse {

/// One unit of serving work. The model/dataset are shared immutable
/// inputs; requests are cheap to copy and queue.
struct ServiceRequest {
  std::shared_ptr<const GnnModel> model;
  std::shared_ptr<const Dataset> dataset;
  EngineOptions options;
  /// Relative deadline in milliseconds, measured from submit(). 0 = use
  /// ServiceOptions::default_deadline_ms (which may itself be 0 = none);
  /// negative values are rejected with std::invalid_argument. When the
  /// deadline passes, the request fails with DeadlineExceededError — at
  /// dequeue if it never started (expired_in_queue), or at the next
  /// cooperative check if it was already executing.
  std::int64_t deadline_ms = 0;

  /// Take ownership of the inputs (moves them onto the heap).
  static ServiceRequest own(GnnModel model, Dataset dataset,
                            EngineOptions options = {});
  /// Alias caller-owned inputs without copying. The caller must keep them
  /// alive and unmodified until the request completes.
  static ServiceRequest borrow(const GnnModel& model, const Dataset& dataset,
                               const EngineOptions& options = {});
};

enum class RequestState { kQueued, kRunning, kDone, kFailed };
using RequestId = std::uint64_t;

/// Per-request wall-clock breakdown (steady clock, milliseconds).
struct RequestTiming {
  double queue_ms = 0.0;  // submit -> worker pickup
  double exec_ms = 0.0;   // pickup -> completion (includes compile/cache)
  double total_ms = 0.0;  // submit -> completion
};

/// What submit() does when the request queue is at
/// ServiceOptions::max_queue_depth (irrelevant while the queue is
/// unbounded, the default).
enum class AdmissionPolicy {
  /// Block the submitter until a worker makes room (backpressure
  /// propagates to the caller). A blocked submit still resolves cleanly
  /// if shutdown() races it.
  kBlock,
  /// Fail fast: submit() still returns an id, but its slot is already
  /// failed with AdmissionRejectedError — wait(id) rethrows it without
  /// the request ever executing. try_submit() returns nullopt instead.
  kReject,
  /// Make room by failing the *oldest* queued (not yet running) requests
  /// with AdmissionRejectedError and admitting the new one — freshest
  /// traffic wins under overload.
  kShedOldest,
};

const char* admission_policy_name(AdmissionPolicy p);
/// Parse "block" / "reject" / "shed"; throws std::invalid_argument on
/// unknown names (matching the request_stream parse helpers).
AdmissionPolicy parse_admission_policy(const std::string& s);

/// Thrown (via wait()) for requests refused by bounded admission control
/// — distinct from the ShutdownError a shutdown race produces, so
/// callers can tell "overloaded, retry later" from "service is gone".
struct AdmissionRejectedError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Thrown (via wait()) when a request's execution failed for any reason
/// other than a cooperative abort — the fourth leg of the error taxonomy
/// next to CancelledError / DeadlineExceededError (util/cancellation.hpp)
/// and AdmissionRejectedError. The original exception's message is
/// preserved; input-validation failures (std::invalid_argument from the
/// compiler) arrive here too when they surface asynchronously through a
/// worker, keeping "what wait() can throw" a closed set.
struct ExecutionError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Deadline/cancellation/failure counters (slots_mu_-guarded snapshots).
struct RobustnessStats {
  std::int64_t expired_in_queue = 0;  // deadline passed before pickup;
                                      // never reached the compiler
  std::int64_t expired_running = 0;   // deadline fired mid-execution
  std::int64_t cancelled = 0;         // aborted by cancel() or shutdown
  std::int64_t execution_failures = 0;  // worker failures wrapped as
                                        // ExecutionError
};

/// Admission-control counters (all zero while the queue is unbounded,
/// except accepted).
struct AdmissionStats {
  std::int64_t accepted = 0;  // submits that were enqueued
  std::int64_t rejected = 0;  // failed fast (kReject full / try_submit nullopt)
  std::int64_t shed = 0;      // queued requests failed by kShedOldest
};

/// Continuous-batching counters (slots_mu_-guarded snapshots). A "batch"
/// here is one BatchScheduler release with at least one still-runnable
/// member (stale/expired members are excluded, so occupancy measures work
/// actually fused, not queue bookkeeping). All zero with batching off —
/// every dequeue is then a singleton and is not counted as a batch.
struct BatchStats {
  std::int64_t batches_formed = 0;   // releases with >= 1 runnable member
  std::int64_t batched_requests = 0; // runnable members across them
  std::int64_t fused_batches = 0;    // releases with >= 2 runnable members
  std::int64_t fused_requests = 0;   // members of those releases
  std::int64_t fused_kernels = 0;    // kernels executed as ONE shared-operand
                                     // sweep (RuntimeSystem::execute_batch)
  double mean_occupancy() const {
    return batches_formed > 0
               ? static_cast<double>(batched_requests) /
                     static_cast<double>(batches_formed)
               : 0.0;
  }
};

struct ServiceOptions {
  /// Worker threads for submitted requests. 0 = auto: hardware
  /// concurrency capped at 16 (beyond that, intra-op parallelism is the
  /// better use of cores). Explicit positive values are honored as given;
  /// negative values are rejected (std::invalid_argument). The
  /// constructor resolves this field, so options().workers always reports
  /// the effective count — there is no hidden cap. Workers spawn lazily
  /// on first submit; run_one never spawns any.
  int workers = 0;
  /// CompilationCache capacity (programs). 0 disables caching.
  std::size_t cache_capacity = 16;
  /// ONE process-wide byte budget spanning every reuse tier — tile pool,
  /// plan store, compilation cache, result cache (util/memory_budget.hpp).
  /// 0 (default) keeps the pre-budget behavior: each tier enforces its
  /// own private byte ceiling and the budget only tracks totals and
  /// high-water stats. > 0: the private ceilings switch off, the
  /// per-tier byte knobs (compilation_cache_bytes, result_cache_bytes)
  /// become soft WEIGHTS deciding each tier's fair share, and crossing
  /// the limit triggers weighted cross-tier eviction. The invariant is
  /// "quiesced total <= limit" — a charge may transiently overshoot
  /// until the rebalance it requests runs.
  std::size_t memory_budget_bytes = 0;
  /// Approximate byte bound for resident compiled programs
  /// (CompiledProgram::approx_footprint_bytes; pooled operands counted
  /// in the tile pool instead). Private LRU ceiling while
  /// memory_budget_bytes is 0 (0 = count-only LRU); the compile tier's
  /// weight under a budget. Also the tile-pool tier's weight — the pool
  /// holds what programs used to.
  std::size_t compilation_cache_bytes = 512u << 20;
  /// TilePool capacity in pooled operands (src/matrix/tile_pool.hpp):
  /// programs compiled from the same dataset under the same partition
  /// geometry share one immutable copy of the reorganized adjacency/H0
  /// tiles instead of each holding a private one. 0 disables sharing
  /// (every compile builds private operands — the pre-pool behavior).
  std::size_t tile_pool_capacity = 64;
  /// Per-request intra-op parallelism cap: the most pool threads one
  /// request's compile + execute may fan out on, *in total* (nested
  /// parallel calls inside a capped request run inline rather than
  /// multiplying the budget; see ParallelMaxThreadsScope). 0 = uncapped
  /// (share the pool; a lone big request uses every idle core), 1 =
  /// fully serial on its worker (the pre-work-stealing behavior), N = at
  /// most N threads. Negative values are rejected. A request's own
  /// EngineOptions::runtime.host_threads composes with this: the tighter
  /// of the two bounds wins.
  int intra_op_threads = 0;
  /// Bound on queued (accepted but not yet running) requests. 0 =
  /// unbounded (the pre-admission-control behavior). When the bound is
  /// hit, `admission` decides what submit() does.
  std::size_t max_queue_depth = 0;
  /// Full-queue behavior; see AdmissionPolicy. Ignored while
  /// max_queue_depth is 0.
  AdmissionPolicy admission = AdmissionPolicy::kBlock;
  /// ResultCache capacity in reports. 0 disables result memoization (the
  /// default): every request executes. When > 0, a request whose
  /// ResultKey (compile content + every runtime-options field) matches a
  /// cached entry returns the stored report — bit-identical in every
  /// deterministic field — without executing.
  std::size_t result_cache_capacity = 0;
  /// Approximate byte bound for resident memoized reports (they carry
  /// the full functional output matrix). 0 = bounded by count only.
  std::size_t result_cache_bytes = 256u << 20;
  /// PlanStore capacity in plans (service/plan_store.hpp). 0 disables
  /// cross-request plan reuse (the default): every compilation-cache miss
  /// plans its partitions from scratch. When > 0, a miss first consults
  /// the store for a plan-compatible snapshot (same model/plan shape,
  /// vertex count, and planning config — plan_signature) and routes
  /// through compile_with_plan, skipping the planner; reports stay
  /// bit-identical to plan-from-scratch compilation by the determinism
  /// contract.
  std::size_t plan_store_capacity = 0;
  /// Disk tier for the plan store (ignored while plan_store_capacity is
  /// 0). Non-empty: plans persist as IR snapshots under this directory,
  /// and a restarted service warm-starts its compiler from them.
  std::string plan_store_dir;
  /// Default relative deadline for submitted requests, in milliseconds.
  /// 0 = none (the pre-deadline behavior). A request's own deadline_ms,
  /// when set, wins. DYNASPARSE_DEADLINE_MS supplies this for the
  /// process-default service. run_one() is never deadline-bounded — it
  /// executes synchronously for a caller that is, by construction, still
  /// waiting.
  std::int64_t default_deadline_ms = 0;
  /// Fault-injection spec (util/fault_injection.hpp grammar, e.g.
  /// "plan_store.disk_read:0.3,seed:7"). Non-empty: the constructor arms
  /// the process-global injector with it (malformed specs throw
  /// std::invalid_argument). Empty (default): whatever
  /// DYNASPARSE_FAULT_SPEC armed — or nothing — stays in effect.
  std::string fault_spec;
  /// Continuous cross-request batching collect window, in microseconds
  /// (service/batch_scheduler.hpp). Workers hold a fusion-compatible
  /// group of queued requests open this long (from its first member) and
  /// execute the group as one fused multi-feature batch — shared pooled
  /// adjacency operands stream once for the whole group, with per-member
  /// reports bit-identical to solo execution. 0 (default) with
  /// max_batch_size <= 1 disables batching entirely: workers pop one job
  /// at a time exactly as before. Negative values are rejected.
  /// DYNASPARSE_BATCH_WINDOW_US supplies this for the process default.
  std::int64_t batch_window_us = 0;
  /// Release a collecting group as soon as it reaches this many members
  /// (the K cutoff). 0 with a positive window = unlimited (the window
  /// alone decides); values > 1 enable batching even with window 0
  /// (opportunistic fusion of already-queued bursts, no added latency).
  /// DYNASPARSE_BATCH_MAX supplies this for the process default.
  std::size_t max_batch_size = 0;
};

class InferenceService {
 public:
  /// Validates and resolves `options` (see ServiceOptions field docs);
  /// throws std::invalid_argument on negative workers/intra_op_threads.
  explicit InferenceService(ServiceOptions options = {});
  /// Equivalent to shutdown(): blocks until every submitted request has
  /// completed and every in-flight wait() has returned, then joins the
  /// workers. Concurrent submit() calls fail cleanly instead of enqueueing
  /// work that would never run.
  ~InferenceService();

  /// Abort-and-join: stop accepting submits (racing ones throw
  /// ShutdownError), fail every still-queued slot with
  /// CancelledError, cancel every running request's token (the
  /// cooperative checks abort it at the next boundary), join the
  /// workers, fail any slot that never reached a terminal state, wake
  /// all waiters, and hold until each in-flight wait() has consumed its
  /// slot. Idempotent and safe to call concurrently with submit()/wait();
  /// after it returns the service only serves run_one().
  void shutdown();

  InferenceService(const InferenceService&) = delete;
  InferenceService& operator=(const InferenceService&) = delete;

  /// Enqueue a request. Throws std::invalid_argument on a null
  /// model/dataset, ShutdownError if the service is shutting down
  /// (the request is not enqueued and no slot leaks — a returned id is
  /// always eventually resolved by wait()). With a bounded queue
  /// (ServiceOptions::max_queue_depth) and the queue full, the admission
  /// policy applies: kBlock waits for room (so submit() may block),
  /// kReject returns an id whose wait() rethrows AdmissionRejectedError
  /// without executing, kShedOldest admits this request after failing the
  /// oldest queued ones the same way.
  RequestId submit(ServiceRequest request);

  /// Non-blocking admission: like submit(), but when the request cannot
  /// be enqueued right now — queue full (any admission policy; try_submit
  /// never sheds) or service shutting down — returns std::nullopt instead
  /// of blocking or throwing. Still throws std::invalid_argument on a
  /// null model/dataset.
  std::optional<RequestId> try_submit(ServiceRequest request);

  /// Poll. Throws std::invalid_argument for an unknown (or already
  /// consumed) id.
  RequestState state(RequestId id) const;
  bool done(RequestId id) const;  // kDone or kFailed

  /// Request a cooperative abort. A still-queued request fails
  /// immediately (wait(id) rethrows CancelledError; the stale queue item
  /// is skipped by the worker that eventually pops it); a running one is
  /// signalled through its token and aborts at the next pipeline check —
  /// and if execution slips past its last check and completes anyway, the
  /// worker discards the result at publish time, so `true` is a hard
  /// promise: wait(id) WILL throw CancelledError. Returns false without
  /// effect when the request already reached a terminal state —
  /// cancellation never un-completes a published result — and throws
  /// std::invalid_argument for an unknown (or consumed) id. Cancelling
  /// does not consume the slot: the owner still calls wait().
  bool cancel(RequestId id);

  /// Block until the request completes, then consume its slot: returns the
  /// report (optionally the timing), or rethrows the request's exception.
  /// Each id can be waited on exactly once.
  InferenceReport wait(RequestId id, RequestTiming* timing = nullptr);

  /// Submit all, wait all; reports come back in request order. If any
  /// request failed, every other request still completes, then the first
  /// failure (in request order) is rethrown.
  std::vector<InferenceReport> run_batch(std::vector<ServiceRequest> requests);

  /// Execute one request synchronously on the calling thread through the
  /// shared cache + execution path (no queue, no workers).
  InferenceReport run_one(const GnnModel& model, const Dataset& ds,
                          const EngineOptions& options = {});

  CompilationCache& cache() { return cache_; }
  CacheStats cache_stats() const { return cache_.stats(); }
  ResultCache& result_cache() { return result_cache_; }
  ResultCacheStats result_cache_stats() const { return result_cache_.stats(); }
  /// The plan store seeding compilation-cache misses, or null when
  /// ServiceOptions::plan_store_capacity is 0.
  PlanStore* plan_store() { return plan_store_.get(); }
  /// Zero-initialized stats while the store is disabled.
  PlanStoreStats plan_store_stats() const {
    return plan_store_ ? plan_store_->stats() : PlanStoreStats{};
  }
  /// The process-wide byte arbiter all reuse tiers register with. Always
  /// present; track-only while ServiceOptions::memory_budget_bytes is 0.
  MemoryBudget& memory_budget() { return *budget_; }
  MemoryBudgetStats memory_budget_stats() const { return budget_->stats(); }
  /// The shared operand pool (capacity 0 = sharing disabled, but the
  /// object always exists so stats read zero instead of faulting).
  TilePool& tile_pool() { return *tile_pool_; }
  TilePoolStats tile_pool_stats() const { return tile_pool_->stats(); }
  AdmissionStats admission_stats() const;
  RobustnessStats robustness_stats() const;
  /// Continuous-batching counters; all zero while batching is off.
  BatchStats batch_stats() const;
  /// Resolved options: workers is the effective worker count (never 0).
  const ServiceOptions& options() const { return options_; }

  /// Process-wide service backing core/engine.hpp's run_inference. Its
  /// compilation-cache capacity defaults to 4 programs; override with the
  /// DYNASPARSE_ENGINE_CACHE environment variable (0 disables caching and
  /// restores the pre-service always-recompile behavior). Result
  /// memoization is off by default; DYNASPARSE_RESULT_CACHE=N enables an
  /// N-report ResultCache and DYNASPARSE_RESULT_CACHE_MB bounds its
  /// approximate resident bytes (default 256 MiB when enabled; suffixes
  /// "512m"/"2g" accepted, a bare number is MiB). Plan
  /// reuse is off by default; DYNASPARSE_PLAN_STORE=N enables an N-plan
  /// PlanStore and DYNASPARSE_PLAN_STORE_DIR adds its disk tier.
  /// DYNASPARSE_MEM_BUDGET (bytes; "512m"/"2g" suffixes) sets the
  /// process-wide memory budget across all tiers, and
  /// DYNASPARSE_TILE_POOL=N sizes the shared operand pool (0 disables
  /// operand sharing).
  /// DYNASPARSE_DEADLINE_MS (a duration: "250", "250ms", "1.5s") sets
  /// default_deadline_ms for submitted requests; run_inference routes
  /// through run_one and stays deadline-free. All integer knobs parse
  /// strictly (util/strict_parse.hpp): a malformed value logs a warning
  /// and keeps the default instead of being silently ignored or misread.
  /// (DYNASPARSE_FAULT_SPEC arms the global fault injector directly —
  /// see util/fault_injection.hpp — not through these options.)
  static InferenceService& process_default();

 private:
  struct Job {
    RequestId id = 0;
    ServiceRequest request;
  };
  struct Slot {
    RequestState state = RequestState::kQueued;
    InferenceReport report;
    std::exception_ptr error;
    std::chrono::steady_clock::time_point submitted, started, finished;
    /// Per-request abort handle: cancel()/shutdown() fire it; its token
    /// (deadline-carrying when one applies) rides into execute_request.
    CancellationSource source;
    /// True when robust_.cancelled counted this slot. A failed-push
    /// submit path that erases (or overwrites) a shutdown-cancelled slot
    /// nobody can ever wait on must un-count it, or the cancelled stat
    /// would exceed the CancelledErrors actually observable.
    bool cancel_counted = false;
  };

  /// One batch member after the dequeue-time slot recheck: the job plus
  /// the token snapshot taken while marking its slot kRunning.
  struct RunnableMember {
    Job* job = nullptr;
    CancellationToken token;
  };

  InferenceReport execute_request(const ServiceRequest& request,
                                  const CancellationToken& token = {});
  void ensure_workers();
  void worker_main();
  /// Process one BatchScheduler release: per-member stale/expired slot
  /// recheck, then the solo path for a single runnable member (exactly
  /// the pre-batching behavior) or the fused path for several.
  void process_batch(std::vector<Job>& jobs);
  /// Solo execution + publication of one runnable member (the
  /// pre-batching worker body after the dequeue recheck).
  void run_job(Job& job, const CancellationToken& token);
  /// Fused execution of >= 2 runnable members: per-member compile /
  /// result-cache peek, RuntimeSystem::execute_batch over the misses,
  /// per-member report assembly and publication. Member failures
  /// (cancel, deadline, chaos fault, compile error) are isolated.
  void run_fused(std::vector<RunnableMember>& members);
  /// Terminal-state publication shared by the solo and fused paths:
  /// classify `raw` into the wait() error taxonomy (or discard a
  /// completed-but-cancelled result), update the slot + robustness stats
  /// under slots_mu_, wake waiters.
  void publish_result(RequestId id, InferenceReport&& report,
                      std::exception_ptr raw, const CancellationToken& token);
  /// Create a kQueued slot under slots_mu_ (throws ShutdownError
  /// when shutting down and `throw_on_closed`; returns 0 otherwise) and
  /// bump inflight_submits_. `deadline_ms` is the request's effective
  /// relative deadline (already defaulted/validated; 0 = none) — the
  /// slot's CancellationSource is built against the absolute point.
  RequestId create_slot(bool throw_on_closed, std::int64_t deadline_ms);
  /// Fail a still-kQueued slot with `error` (slots_mu_ held). Returns
  /// false without touching the slot when it already reached a terminal
  /// state (e.g. a racing shutdown failed it first) — callers use the
  /// return to keep admission stats exact.
  bool fail_slot_locked(Slot& slot, std::exception_ptr error);
  /// Erase a slot whose id was never returned to the caller (slots_mu_
  /// held). If a racing shutdown already failed it as cancelled, the
  /// robustness stat is rolled back: nobody can ever observe that
  /// CancelledError, so counting it would break the invariant
  /// `cancelled + expired == aborts seen by waiters`.
  void erase_unobserved_slot_locked(RequestId id);

  const ServiceOptions options_;
  // Declaration order is load-bearing twice over: the budget must outlive
  // every tier handle (so it is first), and tiers register with it in
  // member-init order — pool, plans, compile, result — which is the order
  // rebalance() shrinks in REVERSE, so the program/report caches drop
  // their pool-operand references before the pool is asked to free them.
  std::shared_ptr<MemoryBudget> budget_;
  std::shared_ptr<TilePool> tile_pool_;
  std::shared_ptr<PlanStore> plan_store_;  // null when disabled; outlives cache_
  CompilationCache cache_;
  ResultCache result_cache_;
  BlockingQueue<Job> queue_;
  BatchScheduler<Job> batcher_;  // consumer side of queue_; workers pop
                                 // batches through it, never queue_ directly

  mutable OrderedMutex slots_mu_{LockRank::kServiceSlots};
  OrderedCondVar slots_cv_;
  std::unordered_map<RequestId, Slot> slots_;
  RequestId next_id_ = 1;
  AdmissionStats admission_; // guarded by slots_mu_
  RobustnessStats robust_;   // guarded by slots_mu_
  BatchStats batch_;         // guarded by slots_mu_
  int waiters_ = 0;          // threads inside wait(); shutdown drains to 0
  int inflight_submits_ = 0; // submits past the accepting_ check but not
                             // yet resolved; shutdown drains to 0
  bool accepting_ = true;    // cleared first thing in shutdown()

  OrderedMutex workers_mu_{LockRank::kServiceWorkers};
  std::vector<std::thread> workers_;
};

}  // namespace dynasparse
