#include "service/request_stream.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "model/pruning.hpp"
#include "service/errors.hpp"
#include "util/strict_parse.hpp"

namespace dynasparse {

namespace {

[[noreturn]] void fail(int line, const std::string& msg) {
  throw StreamParseError("request stream line " + std::to_string(line) + ": " + msg);
}

const char* strategy_token(MappingStrategy s) {
  switch (s) {
    case MappingStrategy::kStatic1: return "static1";
    case MappingStrategy::kStatic2: return "static2";
    case MappingStrategy::kDynamic: return "dynamic";
  }
  return "dynamic";
}

// Strict whole-token numeric parsing lives in util/strict_parse.hpp,
// shared with the CLIs so stream files and command-line flags reject
// malformed values ("4x2", "16abc") identically.

const char* model_token(GnnModelKind kind) {
  switch (kind) {
    case GnnModelKind::kGcn: return "gcn";
    case GnnModelKind::kSage: return "sage";
    case GnnModelKind::kGin: return "gin";
    case GnnModelKind::kSgc: return "sgc";
  }
  return "gcn";
}

}  // namespace

GnnModelKind parse_model_kind(const std::string& s) {
  if (s == "gcn") return GnnModelKind::kGcn;
  if (s == "sage") return GnnModelKind::kSage;
  if (s == "gin") return GnnModelKind::kGin;
  if (s == "sgc") return GnnModelKind::kSgc;
  throw StreamParseError("unknown model kind: " + s);
}

MappingStrategy parse_strategy_name(const std::string& s) {
  if (s == "dynamic") return MappingStrategy::kDynamic;
  if (s == "static1") return MappingStrategy::kStatic1;
  if (s == "static2") return MappingStrategy::kStatic2;
  throw StreamParseError("unknown strategy: " + s);
}

std::string StreamRequestSpec::to_line() const {
  std::ostringstream os;
  os.precision(17);  // prune must round-trip bit-exactly (max_digits10)
  os << "dataset=" << dataset << " model=" << model_token(model);
  if (scale != 0) os << " scale=" << scale;
  if (hidden != 0) os << " hidden=" << hidden;
  if (prune != 0.0) os << " prune=" << prune;
  if (strategy != MappingStrategy::kDynamic)
    os << " strategy=" << strategy_token(strategy);
  os << " seed=" << seed;
  if (repeat != 1) os << " repeat=" << repeat;
  if (deadline_ms != 0) os << " deadline_ms=" << deadline_ms;
  return os.str();
}

std::vector<StreamRequestSpec> parse_request_stream(std::istream& in) {
  std::vector<StreamRequestSpec> specs;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::istringstream tokens(line);
    std::string tok;
    StreamRequestSpec spec;
    bool any = false;
    bool comment = false;
    while (!comment && tokens >> tok) {
      if (tok[0] == '#') {
        comment = true;  // rest of the line is a comment
        break;
      }
      auto eq = tok.find('=');
      if (eq == std::string::npos || eq == 0) fail(lineno, "expected key=value: " + tok);
      std::string key = tok.substr(0, eq), value = tok.substr(eq + 1);
      if (value.empty()) fail(lineno, "empty value for " + key);
      bool known = true;
      try {
        if (key == "dataset") spec.dataset = value;
        else if (key == "model") spec.model = parse_model_kind(value);
        else if (key == "scale") spec.scale = strict_stoi(value);
        else if (key == "hidden") spec.hidden = strict_stoll(value);
        else if (key == "prune") spec.prune = strict_stod(value);
        else if (key == "strategy") spec.strategy = parse_strategy_name(value);
        else if (key == "seed") spec.seed = strict_stoull(value);
        else if (key == "repeat") spec.repeat = strict_stoi(value);
        else if (key == "deadline_ms") spec.deadline_ms = strict_stoll(value);
        else known = false;
      } catch (const std::runtime_error& e) {
        fail(lineno, e.what());  // parse_model_kind / parse_strategy_name
      } catch (const std::exception&) {
        fail(lineno, "bad value for " + key + ": " + value);
      }
      if (!known) fail(lineno, "unknown key: " + key);
      any = true;
    }
    if (!any) continue;  // blank or comment-only line
    if (spec.prune < 0.0 || spec.prune >= 1.0) fail(lineno, "prune must be in [0, 1)");
    if (spec.repeat < 1) fail(lineno, "repeat must be >= 1");
    if (spec.scale < 0) fail(lineno, "scale must be >= 0 (0 = dataset default)");
    if (spec.hidden < 0) fail(lineno, "hidden must be >= 0 (0 = dataset default)");
    if (spec.deadline_ms < 0)
      fail(lineno, "deadline_ms must be >= 0 (0 = service default)");
    specs.push_back(std::move(spec));
  }
  return specs;
}

std::vector<StreamRequestSpec> read_request_stream_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw StreamParseError("cannot open request stream: " + path);
  return parse_request_stream(in);
}

std::vector<StreamRequestSpec> expand_stream(
    const std::vector<StreamRequestSpec>& specs) {
  std::vector<StreamRequestSpec> flat;
  for (const StreamRequestSpec& spec : specs) {
    StreamRequestSpec one = spec;
    one.repeat = 1;
    for (int i = 0; i < spec.repeat; ++i) flat.push_back(one);
  }
  return flat;
}

ServiceRequest materialize_request(const StreamRequestSpec& spec) {
  Dataset ds = generate_dataset(dataset_by_tag(spec.dataset), spec.scale, spec.seed);
  if (spec.hidden > 0) ds.spec.hidden_dim = spec.hidden;
  Rng rng(spec.seed + 1);  // same convention as dynasparse_cli
  GnnModel model = build_model(spec.model, ds.spec.feature_dim, ds.spec.hidden_dim,
                               ds.spec.num_classes, rng);
  if (spec.prune > 0.0) prune_model(model, spec.prune);
  EngineOptions options;
  options.runtime.strategy = spec.strategy;
  ServiceRequest req = ServiceRequest::own(std::move(model), std::move(ds), options);
  req.deadline_ms = spec.deadline_ms;
  return req;
}

std::vector<StreamRequestSpec> synthetic_stream(int n, std::uint64_t seed) {
  // A serving-shaped mix over the small/medium registry graphs (the large
  // FL/NE/RE graphs stay available through --stream files): three datasets
  // under two models, cycled, so a stream repeatedly revisits each
  // compilation the way real traffic revisits popular (model, graph)
  // pairs.
  struct Pair {
    const char* dataset;
    GnnModelKind model;
  };
  static const Pair kRoster[] = {
      {"CI", GnnModelKind::kGcn},  {"CO", GnnModelKind::kGcn},
      {"PU", GnnModelKind::kGcn},  {"CI", GnnModelKind::kSage},
      {"CO", GnnModelKind::kSage},
  };
  std::vector<StreamRequestSpec> specs;
  specs.reserve(static_cast<std::size_t>(std::max(n, 0)));
  for (int i = 0; i < n; ++i) {
    const Pair& p = kRoster[static_cast<std::size_t>(i) % (sizeof(kRoster) / sizeof(kRoster[0]))];
    StreamRequestSpec spec;
    spec.dataset = p.dataset;
    spec.model = p.model;
    spec.seed = seed;
    specs.push_back(std::move(spec));
  }
  return specs;
}

}  // namespace dynasparse
