#pragma once
// The service layer's closed error taxonomy.
//
// src/service and src/net never construct a bare std::runtime_error
// (dynasparse_lint rule [error-taxonomy]): every failure a caller can
// observe has a named type, so the wire layer maps exceptions to
// WireErrorCode deliberately instead of by string-matching what() and a
// new failure mode cannot silently ride an existing catch clause. The
// types still DERIVE from std::runtime_error, so pre-existing
// catch (const std::runtime_error&) sites (CLI drivers, tests) keep
// working unchanged.
//
// The full taxonomy, including members defined next to their subsystems:
//   RequestAbortedError / CancelledError / DeadlineExceededError
//     (util/cancellation.hpp) — the request's own cancellation fired
//   AdmissionRejectedError, ExecutionError (service/inference_service.hpp)
//   ShutdownError, PlanSnapshotError, StreamParseError (this header)
//   WireProtocolError (net/wire.hpp), NetError (net/client.hpp),
//   NetSetupError (net/errors.hpp)

#include <stdexcept>

namespace dynasparse {

/// The service is shutting down and refused new work (submit/create_slot
/// after close, a request still queued when the service is destroyed).
/// Maps to WireErrorCode::kShuttingDown.
struct ShutdownError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// A PlanStore disk snapshot failed integrity validation (missing or
/// malformed irsig trailer, signature mismatch). Always caught inside
/// PlanStore — the entry is dropped and re-planned — but typed so the
/// handler cannot accidentally swallow anything broader.
struct PlanSnapshotError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// A request-stream file or line failed to parse (unknown model kind or
/// strategy, malformed field, unreadable file). The stream reader turns
/// per-line instances into one aggregated usage error.
struct StreamParseError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

}  // namespace dynasparse
