#include "service/batch_scheduler.hpp"

#include "compiler/signature.hpp"
#include "graph/dataset.hpp"
#include "model/model.hpp"
#include "util/config.hpp"

namespace dynasparse {

BatchKey make_batch_key(const GnnModel& model, const Dataset& dataset,
                        const SimConfig& config) {
  BatchKey key;
  key.plan = plan_signature(model, dataset.graph.num_vertices(), config);
  key.dataset = dataset_fingerprint(dataset);
  return key;
}

}  // namespace dynasparse
