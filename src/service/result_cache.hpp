#pragma once
// Result memoization: the logical endpoint of the DynaSparse amortization
// idea. The compilation cache shares preprocessing across content-equal
// requests; this cache shares the *entire run*. It is sound because the
// simulator is deterministic end to end — a ResultKey
// (compiler/signature.hpp) pins the compilation content AND every
// RuntimeOptions field, and two runs under an equal key produce
// bit-identical deterministic report fields (the invariant
// tests/golden_report_test.cpp and the service bit-identity checks
// enforce). A repeat request therefore returns the stored
// InferenceReport without executing anything.
//
// Entries are bounded two ways: by report count and by approximate
// resident bytes (InferenceReport::approx_footprint_bytes — reports
// carry the full functional output matrix, so a byte bound is what
// actually caps memory); whichever bound is exceeded evicts, LRU-first.
// The cache mechanics (in-flight dedup via shared_future, poisoned-entry
// erase on a throwing run) live in the shared util/keyed_future_cache.hpp
// core, also behind CompilationCache.
//
// Thread-safe. max_entries 0 disables storage (every call executes) but
// still counts stats, keeping the memoization-off baseline measurable
// through the same code path.

#include <cstdint>
#include <functional>
#include <memory>

#include "compiler/signature.hpp"
#include "core/report.hpp"
#include "util/keyed_future_cache.hpp"

namespace dynasparse {

/// hits/misses/evictions/inflight_joins/entries/bytes; `bytes` is the
/// approximate resident footprint of ready entries.
using ResultCacheStats = KeyedCacheStats;

class ResultCache {
 public:
  /// max_entries 0 disables memoization. max_bytes bounds the approximate
  /// resident footprint of ready entries (0 = unbounded by bytes).
  /// `tier` (optional) mirrors those bytes into a shared MemoryBudget.
  explicit ResultCache(std::size_t max_entries = 0, std::size_t max_bytes = 0,
                       std::shared_ptr<MemoryBudget::Tier> tier = nullptr)
      : impl_(max_entries, max_bytes,
              [](const InferenceReport& r) { return r.approx_footprint_bytes(); },
              std::move(tier), LockRank::kResultCache) {}

  bool enabled() const { return impl_.max_entries() > 0; }

  /// Return the memoized report for `key`, running `run` at most once per
  /// key. May block while another thread runs the same key. Throws
  /// whatever `run` throws. Returns by value because the service's public
  /// API (wait/run_batch/run_one) hands out owned reports: a hit costs
  /// one report copy — still orders of magnitude cheaper than the
  /// compile + execute it replaces.
  InferenceReport get_or_run(const ResultKey& key,
                             const std::function<InferenceReport()>& run) {
    return *impl_.get_or_make(key, [&] {
      return std::make_shared<const InferenceReport>(run());
    });
  }

  /// Ready entry for `key`, or nullptr (does not wait on in-flight runs
  /// and does not touch LRU order or stats).
  std::shared_ptr<const InferenceReport> peek(const ResultKey& key) const {
    return impl_.peek(key);
  }

  ResultCacheStats stats() const { return impl_.stats(); }

  std::size_t max_entries() const { return impl_.max_entries(); }
  std::size_t max_bytes() const { return impl_.max_bytes(); }
  /// Drop every ready entry (in-flight runs complete unobserved).
  void clear() { impl_.clear(); }
  /// Budget shrinker hook: evict ready reports down to `target` bytes.
  void shrink_to_bytes(std::size_t target) { impl_.shrink_to_bytes(target); }

 private:
  KeyedFutureCache<ResultKey, InferenceReport> impl_;
};

}  // namespace dynasparse
