#pragma once
// Compilation cache: the DynaSparse amortization idea applied across
// requests. The paper reuses compile-time work when "the sparsity of the
// input graph and GNN model changes" (Section VIII-A); a serving layer
// generalizes that to *any* request stream — two requests that compile the
// same (model, dataset, config) content share one CompiledProgram.
//
// Keys are content hashes (compiler/signature.hpp), so independently
// constructed but identical inputs hit. Entries hold
// shared_ptr<const CompiledProgram>; a program stays alive while any
// in-flight request executes it even after LRU eviction. In-flight
// compilations deduplicate: the first requester compiles, concurrent
// requesters for the same key block on a shared_future instead of
// compiling again. A compilation that throws is erased so later requests
// retry rather than observing a poisoned entry.
//
// Thread-safe. Capacity 0 disables storage (every call compiles) but
// still counts stats, which keeps the uncached baseline measurable
// through the same code path.

#include <cstdint>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>

#include "compiler/compiler.hpp"
#include "compiler/signature.hpp"

namespace dynasparse {

struct CacheStats {
  std::int64_t hits = 0;        // key found (ready or in-flight)
  std::int64_t misses = 0;      // key absent; this call compiled
  std::int64_t evictions = 0;   // entries dropped by LRU
  std::int64_t inflight_joins = 0;  // hits that waited on a compile in flight
  std::int64_t entries = 0;     // current resident entries
};

class CompilationCache {
 public:
  explicit CompilationCache(std::size_t capacity = 16) : capacity_(capacity) {}

  /// Return the program for (model, ds, cfg), compiling at most once per
  /// content key. May block while another thread compiles the same key.
  /// Throws whatever compile() throws.
  std::shared_ptr<const CompiledProgram> get_or_compile(const GnnModel& model,
                                                        const Dataset& ds,
                                                        const SimConfig& cfg);

  /// Ready entry for `key`, or nullptr (does not wait on in-flight
  /// compiles and does not touch LRU order or stats).
  std::shared_ptr<const CompiledProgram> peek(const CompileKey& key) const;

  CacheStats stats() const;
  std::size_t capacity() const { return capacity_; }
  /// Drop every ready entry (in-flight compiles complete unobserved).
  void clear();

 private:
  using ProgramFuture = std::shared_future<std::shared_ptr<const CompiledProgram>>;
  struct Entry {
    ProgramFuture program;
    bool ready = false;  // set once the compiling thread fulfilled it
    std::list<CompileKey>::iterator lru_pos;
  };

  void touch(Entry& e);           // move to MRU end; mu_ held
  void evict_excess();            // drop ready LRU entries over capacity; mu_ held

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::map<CompileKey, Entry> entries_;
  std::list<CompileKey> lru_;     // front = least recently used
  CacheStats stats_;
};

}  // namespace dynasparse
