#pragma once
// Compilation cache: the DynaSparse amortization idea applied across
// requests. The paper reuses compile-time work when "the sparsity of the
// input graph and GNN model changes" (Section VIII-A); a serving layer
// generalizes that to *any* request stream — two requests that compile the
// same (model, dataset, config) content share one CompiledProgram.
//
// Keys are content hashes (compiler/signature.hpp), so independently
// constructed but identical inputs hit. The cache mechanics — shared_ptr
// entries that outlive LRU eviction while requests execute them,
// in-flight compile dedup via shared_future, poisoned-entry erase on a
// throwing compile — live in the shared util/keyed_future_cache.hpp core
// (also behind the service's ResultCache).
//
// Thread-safe. Capacity 0 disables storage (every call compiles) but
// still counts stats, which keeps the uncached baseline measurable
// through the same code path.

#include <cstdint>
#include <memory>

#include "compiler/compiler.hpp"
#include "compiler/signature.hpp"
#include "matrix/tile_pool.hpp"
#include "service/plan_store.hpp"
#include "util/keyed_future_cache.hpp"
#include "util/memory_budget.hpp"

namespace dynasparse {

struct CacheStats {
  std::int64_t hits = 0;        // key found (ready or in-flight)
  std::int64_t misses = 0;      // key absent; this call compiled
  std::int64_t evictions = 0;   // entries dropped by LRU (count or bytes)
  std::int64_t inflight_joins = 0;  // hits that waited on a compile in flight
  std::int64_t entries = 0;     // current resident entries
  std::int64_t bytes = 0;       // approx resident program bytes
                                // (CompiledProgram::approx_footprint_bytes;
                                // pooled operands excluded — the TilePool
                                // tier accounts those once)
};

class CompilationCache {
 public:
  /// `plans` (optional, shared) seeds the plan of every cache-miss
  /// compile: a miss first consults the PlanStore for a plan-compatible
  /// snapshot (service/plan_store.hpp) and routes through
  /// compile_with_plan, re-planning from scratch only for never-seen plan
  /// shapes. Null = every miss plans from scratch (the pre-PlanStore
  /// behavior). `max_bytes` bounds the approximate resident program
  /// footprint (0 = count-only LRU, the pre-budget behavior); `tier`
  /// mirrors those bytes into a shared MemoryBudget; `pool` routes the
  /// dataset operands of every miss-compile through the shared TilePool
  /// (null = private copies).
  explicit CompilationCache(std::size_t capacity = 16,
                            std::shared_ptr<PlanStore> plans = nullptr,
                            std::size_t max_bytes = 0,
                            std::shared_ptr<MemoryBudget::Tier> tier = nullptr,
                            std::shared_ptr<TilePool> pool = nullptr)
      : impl_(capacity, max_bytes,
              [](const CompiledProgram& p) { return p.approx_footprint_bytes(); },
              std::move(tier), LockRank::kCompileCache),
        plans_(std::move(plans)), pool_(std::move(pool)) {}

  /// Return the program for (model, ds, cfg), compiling at most once per
  /// content key. May block while another thread compiles the same key.
  /// Throws whatever compile() throws. `token` covers only a compile this
  /// call runs itself: if the leader of an in-flight compile aborts
  /// (cancel/deadline), joined waiters retry — and re-compile under their
  /// own tokens — instead of inheriting the abort
  /// (util/keyed_future_cache.hpp hand-off semantics).
  std::shared_ptr<const CompiledProgram> get_or_compile(
      const GnnModel& model, const Dataset& ds, const SimConfig& cfg,
      const CancellationToken& token = {});

  /// Same, with a caller-precomputed key — the service's memoized path
  /// hashes the compile inputs once for its ResultKey and reuses the hash
  /// here. `key` must equal make_compile_key(model, ds, cfg).
  std::shared_ptr<const CompiledProgram> get_or_compile(
      const CompileKey& key, const GnnModel& model, const Dataset& ds,
      const SimConfig& cfg, const CancellationToken& token = {});

  /// Ready entry for `key`, or nullptr (does not wait on in-flight
  /// compiles and does not touch LRU order or stats).
  std::shared_ptr<const CompiledProgram> peek(const CompileKey& key) const {
    return impl_.peek(key);
  }

  CacheStats stats() const;
  std::size_t capacity() const { return impl_.max_entries(); }
  /// The plan store seeding this cache's misses, or null.
  const std::shared_ptr<PlanStore>& plan_store() const { return plans_; }
  /// The tile pool sharing this cache's dataset operands, or null.
  const std::shared_ptr<TilePool>& tile_pool() const { return pool_; }
  /// Drop every ready entry (in-flight compiles complete unobserved).
  void clear() { impl_.clear(); }
  /// Budget shrinker hook: evict ready programs down to `target` bytes.
  /// Dropping a program also drops its pool-operand references, which is
  /// what lets the TilePool's own shrink pass (it runs after this one —
  /// reverse registration order) collect the unpinned tiles.
  void shrink_to_bytes(std::size_t target) { impl_.shrink_to_bytes(target); }

 private:
  /// compile(), optionally plan-seeded through the store and
  /// operand-pooled. `dataset_sig` keys the pool (0 = don't pool).
  CompiledProgram compile_miss(const GnnModel& model, const Dataset& ds,
                               const SimConfig& cfg, const CancellationToken& token,
                               std::uint64_t dataset_sig) const;

  KeyedFutureCache<CompileKey, CompiledProgram> impl_;
  std::shared_ptr<PlanStore> plans_;
  std::shared_ptr<TilePool> pool_;
};

}  // namespace dynasparse
