#include "io/report_io.hpp"

#include <iomanip>
#include <sstream>

namespace dynasparse {

namespace {
/// Minimal JSON string escaping (names are ASCII identifiers here, but
/// stay safe against quotes/backslashes).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}
}  // namespace

std::string report_to_csv(const InferenceReport& report) {
  std::ostringstream os;
  os << "kernel,makespan_cycles,compute_cycles,memory_cycles,ahm_cycles,"
        "tasks,pairs,pairs_gemm,pairs_spdmm,pairs_spmm,pairs_skipped,"
        "load_imbalance,output_density\n";
  os << std::setprecision(10);
  for (const KernelExecutionReport& k : report.execution.kernels) {
    os << k.name << ',' << k.makespan_cycles << ',' << k.compute_cycles << ','
       << k.memory_cycles << ',' << k.ahm_cycles << ',' << k.tasks << ',' << k.pairs
       << ',' << k.pairs_gemm << ',' << k.pairs_spdmm << ',' << k.pairs_spmm << ','
       << k.pairs_skipped << ',' << k.load_imbalance << ',' << k.output_density
       << '\n';
  }
  os << "TOTAL," << report.execution.exec_cycles << ",,,,"
     << report.execution.stats.tasks << ',' << report.execution.stats.pairs
     << ',' << report.execution.stats.pairs_gemm << ','
     << report.execution.stats.pairs_spdmm << ',' << report.execution.stats.pairs_spmm
     << ',' << report.execution.stats.pairs_skipped << ",,\n";
  return os.str();
}

std::string report_to_json(const InferenceReport& report) {
  std::ostringstream os;
  os << std::setprecision(10);
  os << "{\"model\":\"" << json_escape(report.model_name) << "\",";
  os << "\"dataset\":\"" << json_escape(report.dataset_tag) << "\",";
  os << "\"strategy\":\"" << strategy_name(report.strategy) << "\",";
  os << "\"latency_ms\":" << report.latency_ms << ',';
  os << "\"end_to_end_ms\":" << report.end_to_end_ms << ',';
  os << "\"compile_ms\":" << report.compile.total_ms() << ',';
  os << "\"data_movement_ms\":" << report.data_movement_ms << ',';
  os << "\"runtime_overhead_ratio\":" << report.execution.runtime_overhead_ratio << ',';
  os << "\"kernels\":[";
  bool first = true;
  for (const KernelExecutionReport& k : report.execution.kernels) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"" << json_escape(k.name) << "\",\"makespan_cycles\":"
       << k.makespan_cycles << ",\"tasks\":" << k.tasks << ",\"pairs\":" << k.pairs
       << ",\"gemm\":" << k.pairs_gemm << ",\"spdmm\":" << k.pairs_spdmm
       << ",\"spmm\":" << k.pairs_spmm << ",\"skipped\":" << k.pairs_skipped
       << ",\"output_density\":" << k.output_density << '}';
  }
  os << "]}";
  return os.str();
}

}  // namespace dynasparse
