#pragma once
// Report serialization: render an InferenceReport as CSV (one row per
// kernel, for spreadsheets/plotting) or JSON (for dashboards / regression
// tracking of the reproduced tables).

#include <string>

#include "core/report.hpp"

namespace dynasparse {

/// CSV with a header row and one row per kernel, followed by a totals row.
std::string report_to_csv(const InferenceReport& report);

/// Compact JSON object: run metadata, totals, and a kernels array.
std::string report_to_json(const InferenceReport& report);

}  // namespace dynasparse
