#pragma once
// Plain-text graph and feature I/O.
//
// Lets downstream users run Dynasparse on their own data instead of the
// synthetic registry. Formats are deliberately simple and line-oriented:
//
//   edge list:  "# comment" lines ignored; first data line is
//               "<num_vertices>"; every further line "src dst".
//   features:   first data line "<rows> <cols>"; every further line
//               "row col value" (COO triplets, any order).
//
// Both readers validate ranges and throw std::runtime_error with a line
// number on malformed input.

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"
#include "matrix/coo_matrix.hpp"

namespace dynasparse {

Graph read_edge_list(std::istream& in);
Graph read_edge_list_file(const std::string& path);
void write_edge_list(const Graph& g, std::ostream& out);
void write_edge_list_file(const Graph& g, const std::string& path);

CooMatrix read_features(std::istream& in);
CooMatrix read_features_file(const std::string& path);
void write_features(const CooMatrix& m, std::ostream& out);
void write_features_file(const CooMatrix& m, const std::string& path);

}  // namespace dynasparse
