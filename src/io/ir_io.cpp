#include "io/ir_io.hpp"

#include <algorithm>
#include <cstdint>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace dynasparse {

namespace {

constexpr const char* kMagic = "dynasparse-ir-v1";

[[noreturn]] void fail(const char* what, int line) {
  std::ostringstream os;
  os << what << " at line " << line;
  throw std::runtime_error(os.str());
}

bool spec_equal(const KernelSpec& a, const KernelSpec& b) {
  return a.kind == b.kind && a.layer_id == b.layer_id && a.in_dim == b.in_dim &&
         a.out_dim == b.out_dim && a.weight_index == b.weight_index && a.adj == b.adj &&
         a.epsilon == b.epsilon && a.op == b.op && a.input == b.input &&
         a.add_input == b.add_input && a.act == b.act;
}

}  // namespace

bool IrSnapshot::operator==(const IrSnapshot& o) const {
  if (plan.n1 != o.plan.n1 || plan.n2 != o.plan.n2 || plan.n_max != o.plan.n_max)
    return false;
  if (kernels.size() != o.kernels.size()) return false;
  for (std::size_t i = 0; i < kernels.size(); ++i) {
    const KernelIR& a = kernels[i];
    const KernelIR& b = o.kernels[i];
    if (a.node_id != b.node_id || a.num_vertices != b.num_vertices ||
        a.num_edges != b.num_edges)
      return false;
    if (!spec_equal(a.spec, b.spec)) return false;
    const ExecutionSchemeMeta &sa = a.scheme, &sb = b.scheme;
    if (sa.n1 != sb.n1 || sa.n2 != sb.n2 || sa.grid_i != sb.grid_i ||
        sa.grid_k != sb.grid_k || sa.inner_steps != sb.inner_steps)
      return false;
  }
  return true;
}

IrSnapshot snapshot_of(const CompiledProgram& prog) {
  return IrSnapshot{prog.plan, prog.kernels};
}

void write_ir(const IrSnapshot& snap, std::ostream& out) {
  // max_digits10 for doubles: epsilon must round-trip bit-exactly.
  std::streamsize old_precision = out.precision(17);
  out << kMagic << '\n';
  out << "plan " << snap.plan.n1 << ' ' << snap.plan.n2 << ' ' << snap.plan.n_max
      << '\n';
  out << "kernels " << snap.kernels.size() << '\n';
  for (const KernelIR& k : snap.kernels) {
    const KernelSpec& s = k.spec;
    out << "kernel " << k.node_id << ' ' << k.num_vertices << ' ' << k.num_edges << ' '
        << static_cast<int>(s.kind) << ' ' << s.layer_id << ' ' << s.in_dim << ' '
        << s.out_dim << ' ' << s.weight_index << ' ' << static_cast<int>(s.adj) << ' '
        << s.epsilon << ' ' << static_cast<int>(s.op) << ' ' << s.input << ' '
        << s.add_input << ' ' << static_cast<int>(s.act) << '\n';
    const ExecutionSchemeMeta& m = k.scheme;
    out << "scheme " << m.n1 << ' ' << m.n2 << ' ' << m.grid_i << ' ' << m.grid_k << ' '
        << m.inner_steps << '\n';
  }
  out.precision(old_precision);
}

IrSnapshot read_ir(std::istream& in) {
  IrSnapshot snap;
  std::string line, word;
  int line_no = 0;
  auto next = [&]() {
    if (!std::getline(in, line)) fail("unexpected end of IR snapshot", line_no);
    ++line_no;
    return std::istringstream(line);
  };
  {
    std::istringstream is = next();
    is >> word;
    if (word != kMagic) fail("bad IR snapshot magic", line_no);
  }
  {
    std::istringstream is = next();
    is >> word >> snap.plan.n1 >> snap.plan.n2 >> snap.plan.n_max;
    if (word != "plan" || !is || snap.plan.n1 <= 0 || snap.plan.n2 <= 0 ||
        snap.plan.n_max <= 0)
      fail("bad plan line", line_no);
  }
  // The count arrives from an untrusted file: read it signed (operator>>
  // into an unsigned type would wrap "-3" to a huge value) and bound it
  // BEFORE sizing any container — `kernels 99999999999` must be a parse
  // error, not a bad_alloc/OOM. kMaxKernels is orders of magnitude above
  // any real model (one kernel per layer-stage); growth below is
  // incremental anyway, so a lying count inside the bound just hits
  // "unexpected end" at the first missing line.
  constexpr std::int64_t kMaxKernels = 1 << 20;
  std::int64_t count = 0;
  {
    std::istringstream is = next();
    is >> word >> count;
    if (word != "kernels" || !is || count < 0) fail("bad kernel count", line_no);
    if (count > kMaxKernels) fail("kernel count out of range", line_no);
  }
  snap.kernels.reserve(static_cast<std::size_t>(std::min<std::int64_t>(count, 4096)));
  for (std::int64_t i = 0; i < count; ++i) {
    snap.kernels.emplace_back();
    KernelIR& k = snap.kernels.back();
    {
      std::istringstream is = next();
      int kind = 0, adj = 0, op = 0, act = 0;
      is >> word >> k.node_id >> k.num_vertices >> k.num_edges >> kind >>
          k.spec.layer_id >> k.spec.in_dim >> k.spec.out_dim >> k.spec.weight_index >>
          adj >> k.spec.epsilon >> op >> k.spec.input >> k.spec.add_input >> act;
      if (word != "kernel" || !is) fail("bad kernel line", line_no);
      if (kind < 0 || kind > 1 || adj < 0 || adj > 3 || op < 0 || op > 2 || act < 0 ||
          act > 2)
        fail("enum out of range in kernel line", line_no);
      if (k.num_vertices < 0 || k.num_edges < 0 || k.spec.in_dim < 0 ||
          k.spec.out_dim < 0)
        fail("negative size in kernel line", line_no);
      k.spec.kind = static_cast<KernelKind>(kind);
      k.spec.adj = static_cast<AdjKind>(adj);
      k.spec.op = static_cast<AccumOp>(op);
      k.spec.act = static_cast<Activation>(act);
    }
    {
      std::istringstream is = next();
      ExecutionSchemeMeta& m = k.scheme;
      is >> word >> m.n1 >> m.n2 >> m.grid_i >> m.grid_k >> m.inner_steps;
      if (word != "scheme" || !is) fail("bad scheme line", line_no);
      if (m.n1 <= 0 || m.n2 <= 0 || m.grid_i < 0 || m.grid_k < 0 || m.inner_steps < 0)
        fail("scheme sizes out of range", line_no);
    }
  }
  return snap;
}

}  // namespace dynasparse
