#pragma once
// Chrome-tracing export of a simulated schedule.
//
// Renders per-core task timelines in the Trace Event Format consumed by
// chrome://tracing and Perfetto: every scheduled interval becomes a
// complete ("X") event with the Computation Core as the thread id and the
// kernel as the category. Cycle timestamps convert to microseconds at the
// accelerator clock.

#include <string>
#include <vector>

#include "runtime/runtime_system.hpp"
#include "runtime/scheduler.hpp"
#include "util/config.hpp"

namespace dynasparse {

/// One kernel's timeline plus its display name.
struct KernelTrace {
  std::string name;
  std::vector<ScheduledInterval> intervals;
  double start_offset_cycles = 0.0;  // kernels execute back to back
};

/// Serialize kernel timelines as a Trace Event Format JSON array object.
std::string schedule_to_chrome_trace(const std::vector<KernelTrace>& kernels,
                                     const SimConfig& cfg);

/// Convenience: export the timeline recorded by an engine run made with
/// RuntimeOptions::collect_timeline = true.
std::string execution_to_chrome_trace(const ExecutionResult& result,
                                      const SimConfig& cfg);

}  // namespace dynasparse
