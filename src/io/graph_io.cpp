#include "io/graph_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace dynasparse {

namespace {

[[noreturn]] void fail(const char* what, int line) {
  std::ostringstream os;
  os << what << " at line " << line;
  throw std::runtime_error(os.str());
}

/// Fetch the next non-comment, non-blank line; returns false at EOF.
bool next_data_line(std::istream& in, std::string& line, int& line_no) {
  while (std::getline(in, line)) {
    ++line_no;
    std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    if (line[first] == '#') continue;
    return true;
  }
  return false;
}

std::ifstream open_or_throw(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open " + path);
  return f;
}

std::ofstream create_or_throw(const std::string& path) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot create " + path);
  return f;
}

}  // namespace

Graph read_edge_list(std::istream& in) {
  std::string line;
  int line_no = 0;
  if (!next_data_line(in, line, line_no)) fail("missing vertex count", line_no);
  std::int64_t n = -1;
  {
    std::istringstream is(line);
    if (!(is >> n) || n < 0) fail("bad vertex count", line_no);
  }
  std::vector<Edge> edges;
  while (next_data_line(in, line, line_no)) {
    std::istringstream is(line);
    Edge e;
    if (!(is >> e.src >> e.dst)) fail("bad edge line", line_no);
    if (e.src < 0 || e.src >= n || e.dst < 0 || e.dst >= n)
      fail("edge endpoint out of range", line_no);
    edges.push_back(e);
  }
  return Graph(n, std::move(edges));
}

Graph read_edge_list_file(const std::string& path) {
  std::ifstream f = open_or_throw(path);
  return read_edge_list(f);
}

void write_edge_list(const Graph& g, std::ostream& out) {
  out << "# dynasparse edge list: <num_vertices>, then src dst per line\n";
  out << g.num_vertices() << '\n';
  const CsrMatrix& a = g.adjacency();
  // CSR rows are destinations; emit src dst.
  for (std::int64_t dst = 0; dst < a.rows(); ++dst)
    for (std::int64_t k = a.row_begin(dst); k < a.row_end(dst); ++k)
      out << a.col_idx()[static_cast<std::size_t>(k)] << ' ' << dst << '\n';
}

void write_edge_list_file(const Graph& g, const std::string& path) {
  std::ofstream f = create_or_throw(path);
  write_edge_list(g, f);
}

CooMatrix read_features(std::istream& in) {
  std::string line;
  int line_no = 0;
  if (!next_data_line(in, line, line_no)) fail("missing feature shape", line_no);
  std::int64_t rows = -1, cols = -1;
  {
    std::istringstream is(line);
    if (!(is >> rows >> cols) || rows < 0 || cols < 0) fail("bad feature shape", line_no);
  }
  CooMatrix m(rows, cols, Layout::kRowMajor);
  while (next_data_line(in, line, line_no)) {
    std::istringstream is(line);
    std::int64_t r, c;
    float v;
    if (!(is >> r >> c >> v)) fail("bad feature triplet", line_no);
    if (r < 0 || r >= rows || c < 0 || c >= cols)
      fail("feature index out of range", line_no);
    if (v != 0.0f) m.push(r, c, v);
  }
  m.sort_to_layout();
  if (!m.well_formed()) fail("duplicate feature positions", line_no);
  return m;
}

CooMatrix read_features_file(const std::string& path) {
  std::ifstream f = open_or_throw(path);
  return read_features(f);
}

void write_features(const CooMatrix& m, std::ostream& out) {
  out << "# dynasparse features: <rows> <cols>, then row col value per line\n";
  out << m.rows() << ' ' << m.cols() << '\n';
  // max_digits10 so every float value round-trips bit-exactly through the
  // text format (default 6-digit precision silently perturbed values).
  std::streamsize old_precision = out.precision(9);
  for (const CooEntry& e : m.entries())
    out << e.row << ' ' << e.col << ' ' << e.value << '\n';
  out.precision(old_precision);
}

void write_features_file(const CooMatrix& m, const std::string& path) {
  std::ofstream f = create_or_throw(path);
  write_features(m, f);
}

}  // namespace dynasparse
