#pragma once
// Optimized-IR serialization.
//
// The paper argues the compiler's output is reusable: "the optimized IR
// can be stored and reused if the sparsity of the input graph and GNN
// model changes" (Section VIII-A). This module persists exactly that
// artifact — the kernel IRs with their execution-scheme metadata and the
// partition plan — as a line-oriented text snapshot that round-trips.
// (Operand data lives with the dataset; the IR is the plan.)

#include <iosfwd>
#include <vector>

#include "compiler/compiler.hpp"
#include "compiler/ir.hpp"

namespace dynasparse {

/// The reusable compiler artifact: plan + per-kernel IR.
struct IrSnapshot {
  PartitionPlan plan;
  std::vector<KernelIR> kernels;

  /// Structural equality (used by tests and cache-validity checks).
  bool operator==(const IrSnapshot& o) const;
};

IrSnapshot snapshot_of(const CompiledProgram& prog);

void write_ir(const IrSnapshot& snap, std::ostream& out);
/// Throws std::runtime_error (with a line number) on malformed input.
IrSnapshot read_ir(std::istream& in);

}  // namespace dynasparse
