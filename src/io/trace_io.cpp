#include "io/trace_io.hpp"

#include <iomanip>
#include <sstream>

namespace dynasparse {

std::string schedule_to_chrome_trace(const std::vector<KernelTrace>& kernels,
                                     const SimConfig& cfg) {
  std::ostringstream os;
  os << std::setprecision(12);
  const double us_per_cycle = 1e6 / cfg.core_clock_hz;
  os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  for (const KernelTrace& k : kernels) {
    for (const ScheduledInterval& iv : k.intervals) {
      if (!first) os << ',';
      first = false;
      double ts = (k.start_offset_cycles + iv.start_cycles) * us_per_cycle;
      double dur = (iv.end_cycles - iv.start_cycles) * us_per_cycle;
      os << "{\"name\":\"" << k.name << " task " << iv.task << "\",\"cat\":\""
         << k.name << "\",\"ph\":\"X\",\"ts\":" << ts << ",\"dur\":" << dur
         << ",\"pid\":1,\"tid\":" << iv.core << '}';
    }
  }
  os << "]}";
  return os.str();
}

std::string execution_to_chrome_trace(const ExecutionResult& result,
                                      const SimConfig& cfg) {
  std::vector<KernelTrace> kernels;
  kernels.reserve(result.timeline.size());
  for (const ExecutionResult::KernelTimeline& t : result.timeline)
    kernels.push_back(KernelTrace{t.name, t.intervals, t.start_offset_cycles});
  return schedule_to_chrome_trace(kernels, cfg);
}

}  // namespace dynasparse
