#include "model/reference.hpp"

#include <stdexcept>

#include "matrix/format_convert.hpp"
#include "matrix/matrix_ops.hpp"

namespace dynasparse {

std::vector<DenseMatrix> reference_inference(const GnnModel& model, const Graph& graph,
                                             const CooMatrix& features) {
  std::string err;
  if (!validate_model(model, &err)) throw std::invalid_argument("invalid model: " + err);
  if (features.rows() != graph.num_vertices() || features.cols() != model.in_dim)
    throw std::invalid_argument("feature matrix shape mismatch");

  DenseMatrix h0 = coo_to_dense(features);
  std::vector<DenseMatrix> outputs;
  outputs.reserve(model.kernels.size());

  for (const KernelSpec& k : model.kernels) {
    const DenseMatrix& in =
        k.input == kFromFeatures ? h0 : outputs[static_cast<std::size_t>(k.input)];
    DenseMatrix out;
    if (k.kind == KernelKind::kAggregate) {
      CsrMatrix op = build_adjacency_operator(graph, k.adj, k.epsilon);
      if (k.op == AccumOp::kSum) {
        out = csr_spdmm(op, in);
      } else {
        // Max/Min aggregation: reduce per output row over weighted
        // neighbor contributions; accumulator starts at 0 (features are
        // non-negative post-ReLU; documented in DESIGN.md).
        out = DenseMatrix(op.rows(), in.cols(), Layout::kRowMajor);
        for (std::int64_t r = 0; r < op.rows(); ++r)
          for (std::int64_t e = op.row_begin(r); e < op.row_end(r); ++e) {
            std::size_t ei = static_cast<std::size_t>(e);
            float w = op.values()[ei];
            std::int64_t src = op.col_idx()[ei];
            for (std::int64_t j = 0; j < in.cols(); ++j) {
              float contrib = w * in.at(src, j);
              float& slot = out.at(r, j);
              if (k.op == AccumOp::kMax)
                slot = contrib > slot ? contrib : slot;
              else
                slot = contrib < slot ? contrib : slot;
            }
          }
      }
    } else {
      out = gemm(in, model.weights[static_cast<std::size_t>(k.weight_index)]);
    }
    if (k.add_input >= 0) {
      const DenseMatrix& extra = outputs[static_cast<std::size_t>(k.add_input)];
      for (std::int64_t r = 0; r < out.rows(); ++r)
        for (std::int64_t c = 0; c < out.cols(); ++c) out.at(r, c) += extra.at(r, c);
    }
    if (k.act != Activation::kNone)
      for (float& v : out.data()) v = apply_activation(k.act, v);
    outputs.push_back(std::move(out));
  }
  return outputs;
}

DenseMatrix reference_output(const GnnModel& model, const Graph& graph,
                             const CooMatrix& features) {
  return reference_inference(model, graph, features).back();
}

}  // namespace dynasparse
