#include "model/model.hpp"

#include <sstream>

#include "model/pruning.hpp"
#include "model/weights.hpp"

namespace dynasparse {

std::int64_t GnnModel::total_weight_elems() const {
  std::int64_t n = 0;
  for (const DenseMatrix& w : weights) n += w.size();
  return n;
}

double GnnModel::weight_density() const {
  std::int64_t total = total_weight_elems();
  if (total == 0) return 0.0;
  std::int64_t nnz = 0;
  for (const DenseMatrix& w : weights) nnz += w.nnz();
  return static_cast<double>(nnz) / static_cast<double>(total);
}

const char* model_kind_name(GnnModelKind kind) {
  switch (kind) {
    case GnnModelKind::kGcn: return "GCN";
    case GnnModelKind::kSage: return "GraphSAGE";
    case GnnModelKind::kGin: return "GIN";
    case GnnModelKind::kSgc: return "SGC";
  }
  return "?";
}

const std::vector<GnnModelKind>& paper_models() {
  static const std::vector<GnnModelKind> kinds = {
      GnnModelKind::kGcn, GnnModelKind::kSage, GnnModelKind::kGin, GnnModelKind::kSgc};
  return kinds;
}

namespace {

/// GCN layer (paper Fig. 10): Update then Aggregate with the sym-norm
/// operator. Doing Update first shrinks the feature dimension before the
/// expensive sparse product — and matches the paper's observation that
/// GCN's first kernel is Update(H0, W1) (Section VIII-B).
void append_gcn(GnnModel& m, const std::vector<std::int64_t>& dims, Rng& rng) {
  const int layers = static_cast<int>(dims.size()) - 1;
  int node = -1;
  for (int layer = 1; layer <= layers; ++layer) {
    std::int64_t fin = dims[static_cast<std::size_t>(layer - 1)];
    std::int64_t fout = dims[static_cast<std::size_t>(layer)];
    m.weights.push_back(xavier_uniform(fin, fout, rng));
    KernelSpec up;
    up.kind = KernelKind::kUpdate;
    up.layer_id = layer;
    up.in_dim = fin;
    up.out_dim = fout;
    up.weight_index = static_cast<int>(m.weights.size()) - 1;
    up.input = node;
    m.kernels.push_back(up);
    node = static_cast<int>(m.kernels.size()) - 1;

    KernelSpec ag;
    ag.kind = KernelKind::kAggregate;
    ag.layer_id = layer;
    ag.in_dim = fout;
    ag.out_dim = fout;
    ag.adj = AdjKind::kSymNorm;
    ag.input = node;
    ag.act = layer < layers ? Activation::kRelu : Activation::kNone;
    m.kernels.push_back(ag);
    node = static_cast<int>(m.kernels.size()) - 1;
  }
}

/// GraphSAGE layer: h' = act(W_self h + W_neigh mean(h_neighbors)).
/// Three kernels per layer: a self Update, a mean Aggregate, and a
/// neighbor Update whose output is combined (add_input) with the self path.
void append_sage(GnnModel& m, const std::vector<std::int64_t>& dims, Rng& rng) {
  const int layers = static_cast<int>(dims.size()) - 1;
  int node = -1;
  for (int layer = 1; layer <= layers; ++layer) {
    std::int64_t fin = dims[static_cast<std::size_t>(layer - 1)];
    std::int64_t fout = dims[static_cast<std::size_t>(layer)];

    m.weights.push_back(xavier_uniform(fin, fout, rng));
    KernelSpec self_up;
    self_up.kind = KernelKind::kUpdate;
    self_up.layer_id = layer;
    self_up.in_dim = fin;
    self_up.out_dim = fout;
    self_up.weight_index = static_cast<int>(m.weights.size()) - 1;
    self_up.input = node;
    m.kernels.push_back(self_up);
    int self_node = static_cast<int>(m.kernels.size()) - 1;

    KernelSpec ag;
    ag.kind = KernelKind::kAggregate;
    ag.layer_id = layer;
    ag.in_dim = fin;
    ag.out_dim = fin;
    ag.adj = AdjKind::kRowNorm;  // mean aggregation
    ag.op = AccumOp::kSum;       // weighted sum realizes the mean
    ag.input = node;
    m.kernels.push_back(ag);
    int agg_node = static_cast<int>(m.kernels.size()) - 1;

    m.weights.push_back(xavier_uniform(fin, fout, rng));
    KernelSpec neigh_up;
    neigh_up.kind = KernelKind::kUpdate;
    neigh_up.layer_id = layer;
    neigh_up.in_dim = fin;
    neigh_up.out_dim = fout;
    neigh_up.weight_index = static_cast<int>(m.weights.size()) - 1;
    neigh_up.input = agg_node;
    neigh_up.add_input = self_node;
    neigh_up.act = layer < layers ? Activation::kRelu : Activation::kNone;
    m.kernels.push_back(neigh_up);
    node = static_cast<int>(m.kernels.size()) - 1;
  }
}

/// GIN layer: h' = MLP((1 + eps) h + sum(h_neighbors)); the MLP is a
/// 2-layer perceptron, so one Aggregate (A + (1+eps)I) then two Updates.
void append_gin(GnnModel& m, const std::vector<std::int64_t>& dims, Rng& rng) {
  constexpr double kEps = 0.1;
  const int layers = static_cast<int>(dims.size()) - 1;
  int node = -1;
  for (int layer = 1; layer <= layers; ++layer) {
    std::int64_t fin = dims[static_cast<std::size_t>(layer - 1)];
    std::int64_t fout = dims[static_cast<std::size_t>(layer)];

    KernelSpec ag;
    ag.kind = KernelKind::kAggregate;
    ag.layer_id = layer;
    ag.in_dim = fin;
    ag.out_dim = fin;
    ag.adj = AdjKind::kSelfLoopEps;
    ag.epsilon = kEps;
    ag.input = node;
    m.kernels.push_back(ag);
    node = static_cast<int>(m.kernels.size()) - 1;

    // MLP: fin -> fout -> fout with ReLU between (and after, except the
    // final model output).
    m.weights.push_back(xavier_uniform(fin, fout, rng));
    KernelSpec up1;
    up1.kind = KernelKind::kUpdate;
    up1.layer_id = layer;
    up1.in_dim = fin;
    up1.out_dim = fout;
    up1.weight_index = static_cast<int>(m.weights.size()) - 1;
    up1.input = node;
    up1.act = Activation::kRelu;
    m.kernels.push_back(up1);
    node = static_cast<int>(m.kernels.size()) - 1;

    m.weights.push_back(xavier_uniform(fout, fout, rng));
    KernelSpec up2;
    up2.kind = KernelKind::kUpdate;
    up2.layer_id = layer;
    up2.in_dim = fout;
    up2.out_dim = fout;
    up2.weight_index = static_cast<int>(m.weights.size()) - 1;
    up2.input = node;
    up2.act = layer < layers ? Activation::kRelu : Activation::kNone;
    m.kernels.push_back(up2);
    node = static_cast<int>(m.kernels.size()) - 1;
  }
}

/// SGC with K hops: K propagation hops (sym-norm Aggregates) followed by a
/// single Update — "Aggregate, Aggregate, Update" in Fig. 10 for K = 2.
void append_sgc(GnnModel& m, int hops, Rng& rng) {
  int node = -1;
  for (int hop = 1; hop <= hops; ++hop) {
    KernelSpec ag;
    ag.kind = KernelKind::kAggregate;
    ag.layer_id = hop;
    ag.in_dim = m.in_dim;
    ag.out_dim = m.in_dim;
    ag.adj = AdjKind::kSymNorm;
    ag.input = node;
    m.kernels.push_back(ag);
    node = static_cast<int>(m.kernels.size()) - 1;
  }
  m.weights.push_back(xavier_uniform(m.in_dim, m.out_dim, rng));
  KernelSpec up;
  up.kind = KernelKind::kUpdate;
  up.layer_id = hops;
  up.in_dim = m.in_dim;
  up.out_dim = m.out_dim;
  up.weight_index = 0;
  up.input = node;
  m.kernels.push_back(up);
}

}  // namespace

GnnModel build_deep_model(GnnModelKind kind, const std::vector<std::int64_t>& dims,
                          Rng& rng) {
  if (dims.size() < 2) throw std::invalid_argument("need at least in and out dims");
  for (std::int64_t d : dims)
    if (d <= 0) throw std::invalid_argument("dims must be positive");
  GnnModel m;
  m.kind = kind;
  m.name = model_kind_name(kind);
  m.num_layers = static_cast<int>(dims.size()) - 1;
  m.in_dim = dims.front();
  m.hidden_dim = dims.size() > 2 ? dims[1] : dims.back();
  m.out_dim = dims.back();
  switch (kind) {
    case GnnModelKind::kGcn: append_gcn(m, dims, rng); break;
    case GnnModelKind::kSage: append_sage(m, dims, rng); break;
    case GnnModelKind::kGin: append_gin(m, dims, rng); break;
    case GnnModelKind::kSgc:
      // Hops are weight-free, so the feature dim is fixed until the
      // final Update; interior dims must restate in_dim.
      for (std::size_t i = 1; i + 1 < dims.size(); ++i)
        if (dims[i] != dims.front())
          throw std::invalid_argument("SGC interior dims must equal in_dim");
      append_sgc(m, m.num_layers, rng);
      break;
  }
  return m;
}

GnnModel build_model(GnnModelKind kind, std::int64_t in_dim, std::int64_t hidden_dim,
                     std::int64_t out_dim, Rng& rng) {
  if (kind == GnnModelKind::kSgc)
    return build_deep_model(kind, {in_dim, in_dim, out_dim}, rng);
  return build_deep_model(kind, {in_dim, hidden_dim, out_dim}, rng);
}

void prune_model(GnnModel& model, double sparsity) {
  for (DenseMatrix& w : model.weights) magnitude_prune(w, sparsity);
}

bool validate_model(const GnnModel& model, std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error) *error = msg;
    return false;
  };
  std::vector<std::int64_t> out_dims(model.kernels.size());
  for (std::size_t i = 0; i < model.kernels.size(); ++i) {
    const KernelSpec& k = model.kernels[i];
    std::ostringstream tag;
    tag << "kernel " << i << " (" << k.kind_name() << ", layer " << k.layer_id << "): ";
    if (k.input != kFromFeatures &&
        (k.input < 0 || static_cast<std::size_t>(k.input) >= i))
      return fail(tag.str() + "input must reference an earlier node or H0");
    std::int64_t in_dim =
        k.input == kFromFeatures ? model.in_dim : out_dims[static_cast<std::size_t>(k.input)];
    if (k.in_dim != in_dim) return fail(tag.str() + "in_dim does not match input node");
    if (k.kind == KernelKind::kUpdate) {
      if (k.weight_index < 0 ||
          static_cast<std::size_t>(k.weight_index) >= model.weights.size())
        return fail(tag.str() + "weight_index out of range");
      const DenseMatrix& w = model.weights[static_cast<std::size_t>(k.weight_index)];
      if (w.rows() != k.in_dim || w.cols() != k.out_dim)
        return fail(tag.str() + "weight shape mismatch");
    } else {
      if (k.in_dim != k.out_dim)
        return fail(tag.str() + "Aggregate must preserve feature dim");
    }
    if (k.add_input >= 0) {
      if (static_cast<std::size_t>(k.add_input) >= i)
        return fail(tag.str() + "add_input must reference an earlier node");
      if (out_dims[static_cast<std::size_t>(k.add_input)] != k.out_dim)
        return fail(tag.str() + "add_input dim mismatch");
    }
    out_dims[i] = k.out_dim;
  }
  if (!model.kernels.empty() && model.kernels.back().out_dim != model.out_dim)
    return fail("final kernel does not produce out_dim");
  return true;
}

}  // namespace dynasparse
