#pragma once
// Element-wise activation functions (paper IR Table II: ReLU, PReLU).
// All activations map 0 to 0, so they preserve structural zeros and can be
// fused into the tile-store path of the simulated accelerator.

#include <functional>

namespace dynasparse {

enum class Activation { kNone, kRelu, kPRelu };

/// Apply the activation to one value. PReLU uses the given negative slope.
float apply_activation(Activation act, float v, float prelu_slope = 0.01f);

/// Functor form for PartitionedMatrix::apply_elementwise.
std::function<float(float)> activation_fn(Activation act, float prelu_slope = 0.01f);

const char* activation_name(Activation act);

}  // namespace dynasparse
