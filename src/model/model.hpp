#pragma once
// GNN model specifications: GCN, GraphSAGE, GIN, SGC (paper Fig. 10).
//
// A model is described as an ordered sequence of kernel nodes, each either
// an Aggregate (sparse product with an adjacency operator) or an Update
// (product with a weight matrix). Nodes name their input explicitly so the
// branching GraphSAGE layer (self-transform in parallel with
// aggregate-then-transform, combined by summation) is expressible; the
// other models are simple chains.
//
// The paper evaluates 2-layer versions of every model with hidden
// dimension 16 (CI/CO/PU) or 128 (FL/NE/RE); `build_model` defaults match.

#include <cstdint>
#include <string>
#include <vector>

#include "graph/normalization.hpp"
#include "matrix/dense_matrix.hpp"
#include "matrix/partitioned_matrix.hpp"
#include "model/activation.hpp"
#include "util/random.hpp"

namespace dynasparse {

enum class GnnModelKind { kGcn, kSage, kGin, kSgc };

enum class KernelKind { kAggregate, kUpdate };

/// Input designator: kFromFeatures = the dataset's H0.
inline constexpr int kFromFeatures = -1;

/// One computation-kernel node of the model's computation graph.
struct KernelSpec {
  KernelKind kind = KernelKind::kUpdate;
  int layer_id = 0;          // 1-based GNN layer this node belongs to
  std::int64_t in_dim = 0;   // feature columns of the input matrix
  std::int64_t out_dim = 0;  // feature columns of the output matrix
  int weight_index = -1;     // Update: index into GnnModel::weights
  AdjKind adj = AdjKind::kRaw;  // Aggregate: adjacency operator to use
  double epsilon = 0.0;         // Aggregate with kSelfLoopEps (GIN)
  AccumOp op = AccumOp::kSum;   // aggregation reduce operator
  int input = kFromFeatures;    // node index whose output feeds this node
  int add_input = -1;           // optional node output summed in post-matmul
  Activation act = Activation::kNone;  // applied after the optional add

  const char* kind_name() const {
    return kind == KernelKind::kAggregate ? "Aggregate" : "Update";
  }
};

struct GnnModel {
  GnnModelKind kind = GnnModelKind::kGcn;
  std::string name;
  int num_layers = 2;
  std::int64_t in_dim = 0;
  std::int64_t hidden_dim = 0;
  std::int64_t out_dim = 0;
  std::vector<KernelSpec> kernels;      // topological execution order
  std::vector<DenseMatrix> weights;     // referenced by weight_index

  /// Sum over Update kernels of in_dim * out_dim (pruning denominator).
  std::int64_t total_weight_elems() const;
  /// Average density across all weight matrices.
  double weight_density() const;
};

const char* model_kind_name(GnnModelKind kind);

/// All four paper models, in paper order (GCN, GraphSAGE, GIN, SGC).
const std::vector<GnnModelKind>& paper_models();

/// Build a 2-layer model with Xavier-initialized weights.
/// in_dim/out_dim come from the dataset (feature_dim / num_classes).
GnnModel build_model(GnnModelKind kind, std::int64_t in_dim, std::int64_t hidden_dim,
                     std::int64_t out_dim, Rng& rng);

/// Build an L-layer model: `dims` lists the feature dimension at every
/// layer boundary (dims.size() - 1 layers; dims = {in, hidden..., out}).
/// SGC interprets the depth as the propagation hop count K with a single
/// final Update (its hops are weight-free, so interior dims must equal
/// dims.front()).
GnnModel build_deep_model(GnnModelKind kind, const std::vector<std::int64_t>& dims,
                          Rng& rng);

/// Prune every weight matrix of `model` to `sparsity` (Figs. 11/12 sweep).
void prune_model(GnnModel& model, double sparsity);

/// Structural validation of the kernel graph: inputs reference earlier
/// nodes (or H0), dims chain correctly, weight indices in range.
bool validate_model(const GnnModel& model, std::string* error = nullptr);

}  // namespace dynasparse
