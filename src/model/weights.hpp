#pragma once
// Weight initialization for GNN models.

#include <cstdint>

#include "matrix/dense_matrix.hpp"
#include "util/random.hpp"

namespace dynasparse {

/// Glorot/Xavier-uniform initialized fan_in x fan_out weight matrix.
DenseMatrix xavier_uniform(std::int64_t fan_in, std::int64_t fan_out, Rng& rng);

}  // namespace dynasparse
