#pragma once
// Naive full-matrix reference inference.
//
// Ground truth for validating the compiler + simulator pipeline: executes
// the same kernel sequence with plain (untiled) host kernels, in the same
// per-element accumulation order, so engine outputs match bit-for-bit on
// test-scale datasets. Dense intermediates make this O(|V| * dim) memory —
// use on test/bench-small graphs only.

#include <vector>

#include "graph/graph.hpp"
#include "matrix/coo_matrix.hpp"
#include "matrix/dense_matrix.hpp"
#include "model/model.hpp"

namespace dynasparse {

/// Outputs of every kernel node, indexed like model.kernels. The last
/// entry is the model output (final vertex embeddings).
std::vector<DenseMatrix> reference_inference(const GnnModel& model, const Graph& graph,
                                             const CooMatrix& features);

/// Convenience: just the final embedding matrix.
DenseMatrix reference_output(const GnnModel& model, const Graph& graph,
                             const CooMatrix& features);

}  // namespace dynasparse
