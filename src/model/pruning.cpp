#include "model/pruning.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace dynasparse {

void magnitude_prune(DenseMatrix& w, double sparsity) {
  if (sparsity < 0.0 || sparsity > 1.0)
    throw std::invalid_argument("sparsity must be in [0, 1]");
  if (sparsity == 0.0 || w.size() == 0) return;
  const std::int64_t total = w.size();
  auto target_zeros = static_cast<std::int64_t>(std::llround(sparsity * static_cast<double>(total)));
  if (target_zeros <= 0) return;

  std::vector<float>& data = w.data();
  std::int64_t existing_zeros = 0;
  for (float v : data)
    if (v == 0.0f) ++existing_zeros;
  std::int64_t to_zero = target_zeros - existing_zeros;
  if (to_zero <= 0) return;

  // nth_element over (|value|, index) keeps determinism under ties.
  std::vector<std::pair<float, std::int64_t>> mag;
  mag.reserve(static_cast<std::size_t>(total - existing_zeros));
  for (std::int64_t i = 0; i < total; ++i)
    if (data[static_cast<std::size_t>(i)] != 0.0f)
      mag.push_back({std::fabs(data[static_cast<std::size_t>(i)]), i});
  auto kth = mag.begin() + std::min<std::int64_t>(to_zero, static_cast<std::int64_t>(mag.size()));
  std::nth_element(mag.begin(), kth, mag.end());
  for (auto it = mag.begin(); it != kth; ++it)
    data[static_cast<std::size_t>(it->second)] = 0.0f;
}

double sparsity_of(const DenseMatrix& w) {
  if (w.size() == 0) return 0.0;
  return 1.0 - w.density();
}

}  // namespace dynasparse
