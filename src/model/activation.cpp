#include "model/activation.hpp"

namespace dynasparse {

float apply_activation(Activation act, float v, float prelu_slope) {
  switch (act) {
    case Activation::kNone:
      return v;
    case Activation::kRelu:
      return v > 0.0f ? v : 0.0f;
    case Activation::kPRelu:
      return v > 0.0f ? v : prelu_slope * v;
  }
  return v;
}

std::function<float(float)> activation_fn(Activation act, float prelu_slope) {
  return [act, prelu_slope](float v) { return apply_activation(act, v, prelu_slope); };
}

const char* activation_name(Activation act) {
  switch (act) {
    case Activation::kNone: return "none";
    case Activation::kRelu: return "ReLU";
    case Activation::kPRelu: return "PReLU";
  }
  return "?";
}

}  // namespace dynasparse
