#include "model/weights.hpp"

#include <cmath>

namespace dynasparse {

DenseMatrix xavier_uniform(std::int64_t fan_in, std::int64_t fan_out, Rng& rng) {
  DenseMatrix w(fan_in, fan_out, Layout::kRowMajor);
  double bound = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  for (std::int64_t r = 0; r < fan_in; ++r)
    for (std::int64_t c = 0; c < fan_out; ++c)
      w.at(r, c) = static_cast<float>(rng.uniform(-bound, bound));
  return w;
}

}  // namespace dynasparse
