#pragma once
// Model pruning (magnitude pruning) used by the paper's pruned-model
// evaluation (Figs. 11/12, Table VIII): all weight matrices of a model are
// pruned to the same target sparsity, and only the resulting *sparsity
// level* enters the experiments.

#include "matrix/dense_matrix.hpp"

namespace dynasparse {

/// Zero out the smallest-magnitude elements of `w` until at least
/// `sparsity` (in [0, 1]) of the elements are zero. Ties broken by
/// position for determinism. sparsity = 0 is a no-op; sparsity = 1 empties
/// the matrix.
void magnitude_prune(DenseMatrix& w, double sparsity);

/// Realized sparsity of a matrix (1 - density).
double sparsity_of(const DenseMatrix& w);

}  // namespace dynasparse
