#pragma once
// Timing model of the Format Transformation Module (paper Section V-B2,
// Fig. 8): Dense-to-Sparse compaction via a log(n)-stage prefix-sum
// shifter and the mirror-image Sparse-to-Dense expander. Both stream n
// elements per cycle — the paper sizes n = 16 to match one DDR4 channel —
// so format transformation adds pipeline latency only and is hidden by
// double buffering (ablation knob in RuntimeOptions exposes it).

#include <cstdint>

namespace dynasparse {

/// Cycles for D2S over `elements` dense values at `lanes`/cycle, including
/// the log2(lanes) pipeline-fill stages.
double d2s_cycles(std::int64_t elements, int lanes);

/// Cycles for S2D over `nnz` sparse tuples expanding into `elements`
/// dense values (throughput bound is the dense side).
double s2d_cycles(std::int64_t elements, int lanes);

}  // namespace dynasparse
