#pragma once
// Soft-processor (MicroBlaze) timing model (paper Section VII).
//
// The runtime system — the Analyzer's per-pair K2P decisions (Algorithm 7)
// and the Scheduler's task dispatches (Algorithm 8) — runs on a 370 MHz
// soft core that talks to the Computation Cores over AXI-stream get/put
// (1-2 cycle) instructions. We charge a fixed cycle cost per decision and
// per dispatch and convert at the soft clock. The paper measures this work
// at ~6.8% of execution time and notes it is hidden by pipelining with the
// previous kernel's execution (Section VI-B); the engine reports both the
// hidden ratio (Fig. 13) and any exposed portion.

#include <cstdint>

#include "util/config.hpp"

namespace dynasparse {

class SoftProcessor {
 public:
  explicit SoftProcessor(const SimConfig& cfg) : cfg_(cfg) {}

  /// Analyzer work: one K2P decision per non-empty tile pair.
  void charge_k2p(std::int64_t pairs) {
    cycles_ += static_cast<double>(pairs) * cfg_.k2p_cycles_per_pair;
  }
  /// Analyzer work for pairs with an empty operand: the density fetch
  /// short-circuits (Algorithm 7 line 6).
  void charge_k2p_skips(std::int64_t pairs) {
    cycles_ += static_cast<double>(pairs) * cfg_.k2p_skip_cycles;
  }
  /// Scheduler work: one dispatch per task assignment.
  void charge_dispatch(std::int64_t tasks) {
    cycles_ += static_cast<double>(tasks) * cfg_.dispatch_cycles_per_task;
  }

  double cycles() const { return cycles_; }
  double elapsed_ms() const { return cfg_.soft_cycles_to_ms(cycles_); }

  /// Soft-processor time expressed in *accelerator* cycles (for overlap
  /// accounting against kernel execution).
  double as_accelerator_cycles() const {
    return cycles_ * cfg_.core_clock_hz / cfg_.soft_clock_hz;
  }

  void reset() { cycles_ = 0.0; }

 private:
  SimConfig cfg_;
  double cycles_ = 0.0;
};

}  // namespace dynasparse
