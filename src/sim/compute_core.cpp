#include "sim/compute_core.hpp"

#include <algorithm>

#include "sim/sparsity_profiler.hpp"

namespace dynasparse {

ComputeCoreModel::ComputeCoreModel(const SimConfig& cfg)
    : cfg_(cfg), cycle_model_(cfg.psys), memory_model_(cfg) {}

TaskTiming ComputeCoreModel::time_task(const std::vector<PairWork>& pairs,
                                       std::size_t writeback_bytes,
                                       std::int64_t result_elements, bool hide_ahm,
                                       int active_cores) const {
  TaskTiming t;
  double load_bytes = 0.0;
  Primitive last = Primitive::kSkip;
  for (const PairWork& p : pairs) {
    ++t.pairs;
    if (p.prim == Primitive::kSkip) {
      ++t.skipped_pairs;
      continue;
    }
    t.compute_cycles += p.compute_cycles_override >= 0.0
                            ? p.compute_cycles_override
                            : cycle_model_.pair_cycles(p.prim, p.shape, p.alpha_spdmm);
    load_bytes += p.load_bytes;
    t.ahm_cycles += p.ahm_cycles;
    if (last != Primitive::kSkip && p.prim != last) {
      t.compute_cycles += cfg_.mode_switch_cycles;
      ++t.mode_switches;
    }
    last = p.prim;
  }
  // DDR bandwidth splits across the cores actually running tasks of this
  // kernel; a single active core streams at the full channel rate.
  int sharers = active_cores > 0 ? std::min(active_cores, cfg_.num_cores)
                                 : cfg_.num_cores;
  double bytes_per_cycle =
      memory_model_.bytes_per_cycle_total() / static_cast<double>(sharers);
  t.memory_cycles =
      (load_bytes + static_cast<double>(writeback_bytes)) / bytes_per_cycle;
  t.ahm_cycles += profile_stream_cycles(result_elements, cfg_.psys);
  // Double buffering overlaps compute with the streaming loads/stores and
  // the AHM's on-the-fly transforms (paper Section V-B3): the task takes
  // the longer of the two pipelines. Without double buffering the AHM
  // stream work serializes with everything else.
  t.total_cycles = std::max(t.compute_cycles, t.memory_cycles);
  if (!hide_ahm) t.total_cycles = t.compute_cycles + t.memory_cycles + t.ahm_cycles;
  return t;
}

}  // namespace dynasparse
