#include "sim/cycle_model.hpp"

#include <stdexcept>

namespace dynasparse {

const char* primitive_name(Primitive p) {
  switch (p) {
    case Primitive::kSkip: return "Skip";
    case Primitive::kGemm: return "GEMM";
    case Primitive::kSpdmm: return "SpDMM";
    case Primitive::kSpmm: return "SPMM";
  }
  return "?";
}

CycleModel::CycleModel(int psys) : psys_(psys) {
  if (psys <= 0) throw std::invalid_argument("psys must be positive");
}

double CycleModel::gemm_cycles(const PairShape& s) const {
  return s.mnd() / (static_cast<double>(psys_) * psys_);
}

double CycleModel::spdmm_cycles(const PairShape& s, double alpha_sparse) const {
  return 2.0 * alpha_sparse * s.mnd() / (static_cast<double>(psys_) * psys_);
}

double CycleModel::spmm_cycles(const PairShape& s) const {
  return s.ax * s.ay * s.mnd() / static_cast<double>(psys_);
}

double CycleModel::macs_per_cycle(Primitive p) const {
  switch (p) {
    case Primitive::kSkip: return 0.0;
    case Primitive::kGemm: return static_cast<double>(psys_) * psys_;
    case Primitive::kSpdmm: return static_cast<double>(psys_) * psys_ / 2.0;
    case Primitive::kSpmm: return static_cast<double>(psys_);
  }
  return 0.0;
}

double CycleModel::pair_cycles(Primitive p, const PairShape& s, double alpha_spdmm) const {
  switch (p) {
    case Primitive::kSkip: return 0.0;
    case Primitive::kGemm: return gemm_cycles(s);
    case Primitive::kSpdmm: return spdmm_cycles(s, alpha_spdmm);
    case Primitive::kSpmm: return spmm_cycles(s);
  }
  return 0.0;
}

}  // namespace dynasparse
