#pragma once
// Timing model of the hardware Sparsity Profiler (paper Section V-B2):
// a comparator array with an adder tree at the Result Buffer output port
// counts nonzeros as the result streams to DDR. It processes `lanes`
// elements per cycle plus an adder-tree drain of log2(lanes) cycles, and
// is hidden under double buffering in the default configuration.

#include <cstdint>

namespace dynasparse {

/// Cycles to profile a stream of `elements` values, `lanes` per cycle.
double profile_stream_cycles(std::int64_t elements, int lanes);

}  // namespace dynasparse
