#pragma once
// Timing model of the Layout Transformation Unit (paper Section V-B2):
// a streaming permutation network (Chen et al., bitonic-permutation based)
// that transposes a tile between row-major and column-major at `lanes`
// elements per cycle with a small network fill latency. GEMM mode needs
// its second operand column-major (Table III); everything in DDR is kept
// row-major, so the LTU runs on the load path of GEMM pairs.

#include <cstdint>

namespace dynasparse {

/// Cycles to re-layout a rows x cols dense tile at `lanes` elements/cycle.
double layout_transform_cycles(std::int64_t rows, std::int64_t cols, int lanes);

}  // namespace dynasparse
