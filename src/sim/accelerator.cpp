#include "sim/accelerator.hpp"

namespace dynasparse {

void AcceleratorStats::merge(const AcceleratorStats& o) {
  tasks += o.tasks;
  pairs += o.pairs;
  pairs_gemm += o.pairs_gemm;
  pairs_spdmm += o.pairs_spdmm;
  pairs_spmm += o.pairs_spmm;
  pairs_skipped += o.pairs_skipped;
  mode_switches += o.mode_switches;
  compute_cycles += o.compute_cycles;
  memory_cycles += o.memory_cycles;
  ahm_cycles += o.ahm_cycles;
}

}  // namespace dynasparse
