#pragma once
// Accelerator-level utilities: aggregated execution statistics and the
// host-side thread pool used to run the *functional* part of the
// simulation in parallel. (The simulated seven-core schedule is computed
// by runtime/scheduler.hpp independently of how many host threads run the
// arithmetic — functional results are deterministic because every task
// owns its output tile exclusively.)

#include <cstdint>

#include "util/parallel.hpp"  // re-exported: parallel_for lives in util

namespace dynasparse {

struct AcceleratorStats {
  std::int64_t tasks = 0;
  std::int64_t pairs = 0;
  std::int64_t pairs_gemm = 0;
  std::int64_t pairs_spdmm = 0;
  std::int64_t pairs_spmm = 0;
  std::int64_t pairs_skipped = 0;
  std::int64_t mode_switches = 0;
  double compute_cycles = 0.0;  // summed over cores
  double memory_cycles = 0.0;
  double ahm_cycles = 0.0;

  void merge(const AcceleratorStats& o);
};

}  // namespace dynasparse
