#pragma once
// Index / Data Shuffle Network model (paper Section V-B: butterfly
// networks with buffering that route nonzero elements to memory banks and
// input pairs to Update Units / Sparse Computation Pipelines).
//
// Functionally a shuffle network delivers every packet to its destination
// port; temporally, packets destined to the same output port in the same
// wave serialize. The buffered butterfly hides in-flight reordering, so
// the per-wave cost is 1 cycle plus the worst output-port multiplicity
// beyond one (head-of-line conflicts), plus a log2(ports) pipeline fill
// charged once per stream.

#include <cstdint>
#include <vector>

namespace dynasparse {

class ShuffleNetwork {
 public:
  /// ports must be a power of two (butterfly geometry).
  explicit ShuffleNetwork(int ports);

  int ports() const { return ports_; }
  /// Pipeline depth (log2 ports).
  int stages() const { return stages_; }

  /// Route one wave of packets (destination port ids, size <= ports).
  /// Returns the cycles the wave occupies the network: 1 + (max
  /// per-port multiplicity - 1).
  int route_wave(const std::vector<int>& destinations) const;

  /// Total cycles to stream `destinations` through the network at
  /// `wave_width` packets per cycle, including the pipeline fill.
  /// Destination order is preserved within the stream (buffered routing).
  double stream_cycles(const std::vector<int>& destinations, int wave_width) const;

 private:
  int ports_;
  int stages_;
};

}  // namespace dynasparse
