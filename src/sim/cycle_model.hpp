#pragma once
// Analytical cycle model of the Agile Computation Module (paper Table IV).
//
// For a tile product X (m x n, density ax) * Y (n x d, density ay) on a
// Computation Core with ALU array psys x psys:
//   GEMM  : systolic output-stationary, psys^2 MAC/cycle  ->  mnd/psys^2
//   SpDMM : scatter-gather,             psys^2/2 MAC/cycle -> 2*a*mnd/psys^2
//           where a is the density of the operand placed in BufferU
//   SPMM  : row-wise product,           psys   MAC/cycle  -> ax*ay*mnd/psys
// Which primitive the runtime chooses is the K2P decision (Algorithm 7);
// this class only prices a given choice.

#include <cstdint>

namespace dynasparse {

enum class Primitive { kSkip, kGemm, kSpdmm, kSpmm };

const char* primitive_name(Primitive p);

struct PairShape {
  std::int64_t m = 0;  // rows of X / Z
  std::int64_t n = 0;  // cols of X == rows of Y
  std::int64_t d = 0;  // cols of Y / Z
  double ax = 0.0;     // density of X
  double ay = 0.0;     // density of Y
  double mnd() const {
    return static_cast<double>(m) * static_cast<double>(n) * static_cast<double>(d);
  }
};

class CycleModel {
 public:
  explicit CycleModel(int psys);

  int psys() const { return psys_; }

  double gemm_cycles(const PairShape& s) const;
  /// alpha_sparse = density of the operand treated as sparse (BufferU).
  double spdmm_cycles(const PairShape& s, double alpha_sparse) const;
  double spmm_cycles(const PairShape& s) const;

  /// Peak MACs per cycle of each execution mode (Table IV row 1).
  double macs_per_cycle(Primitive p) const;

  /// Cycles for the pair under primitive `p`; `alpha_spdmm` is only read
  /// for kSpdmm (it encodes which operand the strategy views as sparse).
  double pair_cycles(Primitive p, const PairShape& s, double alpha_spdmm) const;

 private:
  int psys_;
};

}  // namespace dynasparse
