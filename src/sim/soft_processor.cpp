#include "sim/soft_processor.hpp"

// Header-only implementation; this TU anchors the translation unit list.
