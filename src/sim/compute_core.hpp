#pragma once
// Computation Core timing (paper Section V-B).
//
// A core executes one task (paper Algorithm 4) as a sequence of tile-pair
// products. Compute cycles follow the CycleModel for the chosen execution
// mode; memory cycles follow the MemoryModel over the tiles' *stored*
// bytes; AHM work (sparsity profiling, format/layout transformation) is
// computed separately and, with double buffering enabled (the paper's
// configuration, Section V-B3), hidden under the max(compute, memory)
// pipeline. Mode switches between consecutive pairs cost one cycle.

#include <cstdint>
#include <vector>

#include "sim/cycle_model.hpp"
#include "sim/memory_model.hpp"
#include "util/config.hpp"

namespace dynasparse {

/// Fully-priced unit of work: one tile-pair product inside a task.
struct PairWork {
  PairShape shape;
  Primitive prim = Primitive::kSkip;
  double alpha_spdmm = 0.0;  // density charged in SpDMM mode
  /// Stored bytes of X and Y actually moved for this pair. Fractional:
  /// operand strips that stay resident in the double-buffered on-chip
  /// buffers across tasks (e.g. a weight column strip reused by every
  /// row-block task) carry an amortized share instead of a full reload.
  double load_bytes = 0.0;
  double ahm_cycles = 0.0;  // format + layout transform work on load
  /// When >= 0, use this compute-cycle count instead of the closed-form
  /// model (set by the engine's detailed-timing mode, which runs the
  /// dataflow models of sim/acm_functional.hpp per pair).
  double compute_cycles_override = -1.0;
};

struct TaskTiming {
  double compute_cycles = 0.0;
  double memory_cycles = 0.0;   // loads + result writeback
  double ahm_cycles = 0.0;      // profiler + FTM + LTU stream work
  double total_cycles = 0.0;    // what the scheduler sees
  std::int64_t pairs = 0;
  std::int64_t skipped_pairs = 0;
  int mode_switches = 0;
};

class ComputeCoreModel {
 public:
  explicit ComputeCoreModel(const SimConfig& cfg);

  const CycleModel& cycles() const { return cycle_model_; }
  const MemoryModel& memory() const { return memory_model_; }

  /// Price a whole task. `writeback_bytes` is the stored size of the
  /// output tile; `result_elements` its dense element count (the Sparsity
  /// Profiler streams every element on the store path). When `hide_ahm`
  /// is true (double buffering on) AHM cycles do not extend the task.
  /// `active_cores` is how many cores share the DDR channels while this
  /// kernel runs (min(num_cores, tasks) — a lone task streams at full
  /// bandwidth); 0 means all cores.
  TaskTiming time_task(const std::vector<PairWork>& pairs, std::size_t writeback_bytes,
                       std::int64_t result_elements, bool hide_ahm,
                       int active_cores = 0) const;

 private:
  SimConfig cfg_;
  CycleModel cycle_model_;
  MemoryModel memory_model_;
};

}  // namespace dynasparse
