#include "sim/layout_transform.hpp"

#include <stdexcept>

#include "util/math_util.hpp"
#include "util/prefix_sum.hpp"

namespace dynasparse {

double layout_transform_cycles(std::int64_t rows, std::int64_t cols, int lanes) {
  if (lanes <= 0) throw std::invalid_argument("lanes must be positive");
  std::int64_t elements = rows * cols;
  if (elements <= 0) return 0.0;
  // Streaming permutation: elements/lanes beats plus a 2*log2(lanes)-stage
  // butterfly fill (forward + reverse halves of the permutation network).
  return static_cast<double>(ceil_div(elements, lanes)) +
         2.0 * static_cast<double>(prefix_network_stages(lanes));
}

}  // namespace dynasparse
