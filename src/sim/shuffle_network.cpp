#include "sim/shuffle_network.hpp"

#include <algorithm>
#include <stdexcept>

namespace dynasparse {

ShuffleNetwork::ShuffleNetwork(int ports) : ports_(ports) {
  if (ports <= 0 || (ports & (ports - 1)) != 0)
    throw std::invalid_argument("shuffle network needs power-of-two ports");
  stages_ = 0;
  for (int w = 1; w < ports; w <<= 1) ++stages_;
}

int ShuffleNetwork::route_wave(const std::vector<int>& destinations) const {
  if (destinations.empty()) return 0;
  if (static_cast<int>(destinations.size()) > ports_)
    throw std::invalid_argument("wave wider than network");
  std::vector<int> counts(static_cast<std::size_t>(ports_), 0);
  for (int d : destinations) {
    if (d < 0 || d >= ports_) throw std::invalid_argument("destination out of range");
    ++counts[static_cast<std::size_t>(d)];
  }
  int max_mult = *std::max_element(counts.begin(), counts.end());
  return 1 + (max_mult - 1);
}

double ShuffleNetwork::stream_cycles(const std::vector<int>& destinations,
                                     int wave_width) const {
  if (wave_width <= 0 || wave_width > ports_)
    throw std::invalid_argument("bad wave width");
  double cycles = stages_;  // pipeline fill
  std::vector<int> wave;
  wave.reserve(static_cast<std::size_t>(wave_width));
  for (std::size_t i = 0; i < destinations.size(); i += static_cast<std::size_t>(wave_width)) {
    wave.assign(destinations.begin() + static_cast<std::ptrdiff_t>(i),
                destinations.begin() +
                    static_cast<std::ptrdiff_t>(std::min(
                        destinations.size(), i + static_cast<std::size_t>(wave_width))));
    cycles += route_wave(wave);
  }
  return cycles;
}

}  // namespace dynasparse
