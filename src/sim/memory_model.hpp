#pragma once
// External-memory traffic model.
//
// The Alveo U250 board delivers 77 GB/s of DDR4 bandwidth (paper Table V)
// shared by all Computation Cores; at the 250 MHz accelerator clock that
// is ~308 bytes/cycle in total. We model the steady state as an even
// static split across cores (each core's double-buffered loads stream at
// bandwidth/num_cores), which matches the paper's per-core DDR channel
// assignment closely enough for relative comparisons.

#include <cstddef>

#include "util/config.hpp"

namespace dynasparse {

class MemoryModel {
 public:
  explicit MemoryModel(const SimConfig& cfg);

  double bytes_per_cycle_total() const { return total_rate_; }
  double bytes_per_cycle_per_core() const { return per_core_rate_; }

  /// Cycles for one core to stream `bytes` from/to DDR.
  double core_transfer_cycles(std::size_t bytes) const {
    return static_cast<double>(bytes) / per_core_rate_;
  }

 private:
  double total_rate_;
  double per_core_rate_;
};

}  // namespace dynasparse
