#include "sim/format_transform.hpp"

#include <stdexcept>

#include "util/math_util.hpp"
#include "util/prefix_sum.hpp"

namespace dynasparse {

namespace {
double stream_cycles(std::int64_t elements, int lanes) {
  if (lanes <= 0) throw std::invalid_argument("lanes must be positive");
  if (elements <= 0) return 0.0;
  return static_cast<double>(ceil_div(elements, lanes)) +
         static_cast<double>(prefix_network_stages(lanes));
}
}  // namespace

double d2s_cycles(std::int64_t elements, int lanes) { return stream_cycles(elements, lanes); }

double s2d_cycles(std::int64_t elements, int lanes) { return stream_cycles(elements, lanes); }

}  // namespace dynasparse
