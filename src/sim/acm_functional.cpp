#include "sim/acm_functional.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "matrix/format_convert.hpp"
#include "matrix/matrix_ops.hpp"
#include "util/math_util.hpp"

namespace dynasparse {

namespace {
void check_product_shapes(std::int64_t xr, std::int64_t xc, std::int64_t yr,
                          std::int64_t yc, const DenseMatrix& z) {
  if (xc != yr) throw std::invalid_argument("inner dimension mismatch");
  if (z.rows() != xr || z.cols() != yc)
    throw std::invalid_argument("output shape mismatch");
}
}  // namespace

// ---------------------------------------------------------------------------
// GEMM systolic
// ---------------------------------------------------------------------------

GemmSystolicModel::GemmSystolicModel(int psys) : psys_(psys) {
  if (psys <= 0) throw std::invalid_argument("psys must be positive");
}

DetailedTiming GemmSystolicModel::run(const DenseMatrix& x, const DenseMatrix& y,
                                      DenseMatrix& z) const {
  check_product_shapes(x.rows(), x.cols(), y.rows(), y.cols(), z);
  DetailedTiming t;
  const std::int64_t m = x.rows(), n = x.cols(), d = y.cols();

  // Functional: the systolic schedule accumulates in k order for every
  // output element, identical to the host reference — so it *is* the host
  // reference kernel (row-span fast path).
  gemm_accumulate(x, y, z);
  t.macs = m * n * d;  // the dense array multiplies zeros too

  // Timing: one pass per psys x psys output block; each pass streams the
  // full shared dimension plus the fill/drain ramp of the wavefront.
  std::int64_t passes = ceil_div(m, psys_) * ceil_div(d, psys_);
  t.cycles = static_cast<double>(passes) * (static_cast<double>(n) + 2.0 * psys_);
  t.utilization =
      static_cast<double>(t.macs) /
      (t.cycles * static_cast<double>(psys_) * static_cast<double>(psys_));
  return t;
}

// ---------------------------------------------------------------------------
// SpDMM scatter-gather
// ---------------------------------------------------------------------------

SpdmmScatterGatherModel::SpdmmScatterGatherModel(int psys)
    : psys_(psys), isn_(psys) {
  if (psys <= 1 || (psys & (psys - 1)) != 0)
    throw std::invalid_argument("psys must be a power of two > 1");
}

DetailedTiming SpdmmScatterGatherModel::run(const CooMatrix& x, const DenseMatrix& y,
                                            DenseMatrix& z) const {
  check_product_shapes(x.rows(), x.cols(), y.rows(), y.cols(), z);
  DetailedTiming t;
  const std::int64_t d = y.cols();
  const int wave = psys_ / 2;

  CooMatrix xs = x.layout() == Layout::kRowMajor ? x : x.with_layout(Layout::kRowMajor);

  // Functional scatter-gather (Algorithm 5): each nonzero e fetches row
  // Y[e.col] and the Update/Reduce pair accumulates into Z[e.row] —
  // exactly the host SpDMM kernel (xs is already row-major, so the
  // kernel's internal normalization is a no-op).
  spdmm_accumulate(xs, y, z);
  t.macs = xs.nnz() * d;

  // Timing: psys/2 nonzeros issue per cycle; the ISN serializes fetches
  // hitting the same BufferO bank (col mod psys) within a wave; each
  // issued nonzero occupies its Update Unit ceil(d / psys) cycles, which
  // pipelines across waves (the unit count matches the issue width).
  const double ideal_wave_cycles = static_cast<double>(ceil_div(d, psys_));
  double cycles = isn_.stages();
  std::vector<int> dests;
  dests.reserve(static_cast<std::size_t>(wave));
  const auto& entries = xs.entries();
  for (std::size_t i = 0; i < entries.size(); i += static_cast<std::size_t>(wave)) {
    dests.clear();
    for (std::size_t k = i; k < std::min(entries.size(), i + static_cast<std::size_t>(wave));
         ++k)
      dests.push_back(static_cast<int>(entries[k].col % psys_));
    int wave_cycles = isn_.route_wave(dests);
    t.conflicts += wave_cycles - 1;
    cycles += std::max(static_cast<double>(wave_cycles), ideal_wave_cycles);
  }
  t.cycles = cycles;
  t.utilization = t.cycles > 0.0
                      ? static_cast<double>(t.macs) /
                            (t.cycles * static_cast<double>(psys_) * psys_ / 2.0)
                      : 0.0;
  return t;
}

// ---------------------------------------------------------------------------
// SPMM row-wise product
// ---------------------------------------------------------------------------

SpmmRowwiseModel::SpmmRowwiseModel(int psys) : psys_(psys) {
  if (psys <= 0) throw std::invalid_argument("psys must be positive");
}

DetailedTiming SpmmRowwiseModel::run(const CooMatrix& x, const CooMatrix& y,
                                     DenseMatrix& z) const {
  check_product_shapes(x.rows(), x.cols(), y.rows(), y.cols(), z);
  DetailedTiming t;

  CooMatrix xs = x.layout() == Layout::kRowMajor ? x : x.with_layout(Layout::kRowMajor);
  CsrMatrix ycsr = coo_to_csr(y);

  // Per-SCP workload: SCP[j % psys] owns output row j and performs one
  // multiply-merge per (nonzero of X[j]) x (nonzero of Y[col]) product.
  // The functional math streams through the same row-span scan as the
  // host SPMM kernel (z is row-major by construction here).
  std::vector<std::int64_t> scp_work(static_cast<std::size_t>(psys_), 0);
  const std::int64_t* yrp = ycsr.row_ptr().data();
  const std::int64_t* yci = ycsr.col_idx().data();
  const float* yval = ycsr.values().data();
  const bool z_rm = z.layout() == Layout::kRowMajor;
  for (const CooEntry& e : xs.entries()) {
    scp_work[static_cast<std::size_t>(e.row % psys_)] += ycsr.row_nnz(e.col);
    const std::int64_t kend = yrp[e.col + 1];
    if (z_rm) {
      float* zrow = z.row_ptr(e.row);
      for (std::int64_t k = yrp[e.col]; k < kend; ++k)
        zrow[yci[k]] += e.value * yval[k];
    } else {
      for (std::int64_t k = yrp[e.col]; k < kend; ++k)
        z.at(e.row, yci[k]) += e.value * yval[k];
    }
  }
  for (std::int64_t w : scp_work) t.macs += w;

  // Timing: SCPs run in parallel at one merge per cycle; the mode ends
  // when the most loaded pipeline drains. The conflict counter reports
  // the imbalance the Table IV ideal cannot see.
  std::int64_t max_work = 0;
  for (std::int64_t w : scp_work) max_work = std::max(max_work, w);
  double ideal = static_cast<double>(t.macs) / static_cast<double>(psys_);
  t.cycles = static_cast<double>(max_work);
  t.conflicts = max_work - static_cast<std::int64_t>(ideal);
  t.utilization = t.cycles > 0.0 ? static_cast<double>(t.macs) /
                                       (t.cycles * static_cast<double>(psys_))
                                 : 0.0;
  return t;
}

}  // namespace dynasparse
