#pragma once
// Detailed functional models of the Agile Computation Module's three
// execution modes (paper Section V-B1, Fig. 7).
//
// The analytical model of Table IV prices a tile product in closed form;
// these models execute the actual dataflow — the output-stationary
// systolic schedule for GEMM, the Scatter-Gather pipeline of Algorithm 5
// for SpDMM (including Index Shuffle Network bank conflicts), and the
// Row-wise Product of Algorithm 6 for SPMM (including per-SCP load
// imbalance) — producing both the numeric result and a cycle count with
// the second-order effects the closed forms idealize away.
//
// Invariants (property-tested): every mode computes exactly the same
// product, and detailed cycles >= the Table IV ideal for that mode.

#include <cstdint>

#include "matrix/coo_matrix.hpp"
#include "matrix/dense_matrix.hpp"
#include "sim/shuffle_network.hpp"

namespace dynasparse {

struct DetailedTiming {
  double cycles = 0.0;
  std::int64_t macs = 0;       // useful multiply-accumulates performed
  std::int64_t conflicts = 0;  // extra cycles lost to bank/port conflicts
  double utilization = 0.0;    // macs / (cycles * peak MACs-per-cycle)
};

/// GEMM mode: psys x psys output-stationary systolic array. The array
/// computes one psys x psys output block per pass; a pass streams the
/// shared dimension n plus a 2*psys fill/drain ramp.
class GemmSystolicModel {
 public:
  explicit GemmSystolicModel(int psys);
  /// z += x * y (dense tiles); returns the detailed timing.
  DetailedTiming run(const DenseMatrix& x, const DenseMatrix& y, DenseMatrix& z) const;

 private:
  int psys_;
};

/// SpDMM mode (Algorithm 5): psys/2 nonzeros of the sparse operand are
/// fetched per cycle; the ISN routes each to bank (col mod psys) of
/// BufferO (conflicting fetches serialize); each Update/Reduce unit pair
/// applies the nonzero to a d-wide row of Y at psys MACs/cycle.
class SpdmmScatterGatherModel {
 public:
  explicit SpdmmScatterGatherModel(int psys);
  /// z += x * y with x sparse; returns the detailed timing.
  DetailedTiming run(const CooMatrix& x, const DenseMatrix& y, DenseMatrix& z) const;

 private:
  int psys_;
  ShuffleNetwork isn_;
};

/// SPMM mode (Algorithm 6): psys Sparse Computation Pipelines, SCP[j]
/// owning output rows j mod psys; each SCP merges one product per cycle
/// into its Sparse Data Queue. The mode's cycle count is the maximum SCP
/// workload — row imbalance that the Table IV ideal (uniform density)
/// does not see.
class SpmmRowwiseModel {
 public:
  explicit SpmmRowwiseModel(int psys);
  /// z += x * y with both operands sparse; returns the detailed timing.
  DetailedTiming run(const CooMatrix& x, const CooMatrix& y, DenseMatrix& z) const;

 private:
  int psys_;
};

}  // namespace dynasparse
