#include "sim/memory_model.hpp"

#include <stdexcept>

namespace dynasparse {

MemoryModel::MemoryModel(const SimConfig& cfg) {
  if (!cfg.valid()) throw std::invalid_argument("invalid SimConfig");
  total_rate_ = cfg.ddr_bytes_per_cycle();
  per_core_rate_ = total_rate_ / static_cast<double>(cfg.num_cores);
}

}  // namespace dynasparse
