// dynasparse_serve — replay a request stream through the InferenceService
// and report serving metrics (throughput, latency percentiles, cache
// effectiveness).
//
//   dynasparse_serve --requests 16 --workers 4
//   dynasparse_serve --stream workload.txt --cache 32 --json serve.json
//   dynasparse_serve --listen 7411 --workers 4 --max-queue 64 --admission shed
//
// Flags:
//   --listen PORT     serve the wire protocol (src/net/wire.hpp) on this
//                     TCP port instead of replaying a file: accepts
//                     connections until SIGINT/SIGTERM, then prints (and
//                     with --json, writes) the serving counters. PORT 0
//                     binds an ephemeral port and prints the choice. All
//                     service knobs below (--workers, --max-queue,
//                     --admission, --deadline-ms, --fault, ...) apply to
//                     the networked service unchanged; --stream/--requests
//                     are ignored in this mode.
//   --host H          listen address (default 127.0.0.1)
//   --max-conns N     concurrent-connection cap (default 256); further
//                     accepts are refused with an immediate close
//   --frame-timeout D slow-loris bound: close a connection whose partial
//                     frame stalls this long (duration; default 2s, 0 off)
//   --stream PATH     request-stream file (see src/service/request_stream.hpp)
//   --requests N      synthetic mixed workload of N requests (default 16;
//                     ignored when --stream is given)
//   --workers W       service worker threads (0 = hardware, default 0)
//   --intra-op N      per-request intra-op thread cap: 0 = share the
//                     work-stealing pool freely (default), 1 = serial per
//                     worker, N = at most N pool threads per request
//   --cache N         compilation-cache capacity in programs (default 16)
//   --memoize N       result-cache capacity in reports (default 0 = off):
//                     repeat requests return the memoized report without
//                     executing — bit-identical deterministic fields
//   --memoize-mb M    approximate byte bound for memoized reports
//                     (default 256 MiB; only meaningful with --memoize)
//   --mem-budget SIZE process-wide memory budget across every cache tier
//                     (plans + compiled programs + tile pool + reports).
//                     Accepts "512m" / "2g" style suffixes; bare numbers
//                     are bytes. Default 0 = per-tier ceilings only.
//   --tile-pool N     shared operand tile-pool capacity in entries
//                     (default 64; 0 = each program holds private tiles)
//   --max-queue N     bound the request queue to N queued requests
//                     (default 0 = unbounded)
//   --admission P     full-queue policy: block | reject | shed
//                     (default block; only meaningful with --max-queue)
//   --plan-store N    PlanStore capacity in plans (default 0 = off):
//                     compilation-cache misses seed their partition plan
//                     from plan-compatible earlier requests instead of
//                     re-planning — bit-identical reports, cheaper compiles
//   --plan-store-dir D  disk tier for the plan store: plans persist as IR
//                     snapshots under D and a restarted serve process
//                     warm-starts from them (implies --plan-store 32 when
//                     --plan-store is not given)
//   --deadline-ms D   default per-request deadline (a duration: "250",
//                     "250ms", "1.5s"; default 0 = none). A stream line's
//                     own deadline_ms= wins over this.
//   --batch-window U  continuous-batching collect window in MICROSECONDS
//                     (default 0): fusion-compatible queued requests
//                     gather this long and execute as one fused batch
//   --batch-max K     release a collecting batch at K members (default 0:
//                     with a window, unlimited; K > 1 alone enables
//                     opportunistic batching of already-queued bursts)
//   --cancel-after D  cancel every still-outstanding request D after the
//                     submit burst (a duration; default off) — exercises
//                     the cooperative-cancellation path end to end
//   --fault SPEC      arm the fault injector (util/fault_injection.hpp
//                     grammar, e.g. "plan_store.disk_read:0.3,seed:7")
//   --warm            pre-compile every unique request before timing
//   --seed S          seed for the synthetic workload     (default 2023)
//   --baseline        also run the sequential uncached run_inference-style
//                     loop and report the speedup against it
//   --json PATH       write the metrics as JSON
//
// Requests are submitted asynchronously up front; per-request latency is
// submit->completion (includes queueing), the honest serving number.
// Under --admission reject/shed some requests resolve as admission
// rejections; under --deadline-ms / --cancel-after / --fault some resolve
// as deadline expiries, cancellations, or execution failures. Every
// non-completed outcome is counted by its type (the service's closed
// error taxonomy) and excluded from the latency percentiles; under block
// the submit loop itself is backpressured.

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "net/server.hpp"
#include "service/request_stream.hpp"
#include "util/fault_injection.hpp"
#include "util/stopwatch.hpp"
#include "util/strict_parse.hpp"

using namespace dynasparse;

namespace {

volatile std::sig_atomic_t g_stop_requested = 0;
void request_stop(int) { g_stop_requested = 1; }

[[noreturn]] void usage(const std::string& msg) {
  std::fprintf(stderr, "error: %s\n(see header of tools/dynasparse_serve.cpp)\n",
               msg.c_str());
  std::exit(2);
}

/// Linear-interpolated percentile; `sorted_ms` must be sorted ascending.
double percentile(const std::vector<double>& sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  double rank = p / 100.0 * static_cast<double>(sorted_ms.size() - 1);
  std::size_t lo = static_cast<std::size_t>(rank);
  std::size_t hi = std::min(lo + 1, sorted_ms.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return sorted_ms[lo] * (1.0 - frac) + sorted_ms[hi] * frac;
}

}  // namespace

int main(int argc, char** argv) {
  std::string stream_path, json_path, plan_store_dir, fault_spec;
  int requests = 16, workers = 0, intra_op = 0;
  std::size_t cache_capacity = 16, memoize = 0, memoize_mb = 256, max_queue = 0;
  std::size_t plan_store = 0;
  std::size_t mem_budget = 0, tile_pool = 64;
  bool plan_store_given = false;
  AdmissionPolicy admission = AdmissionPolicy::kBlock;
  std::uint64_t seed = 2023;
  std::int64_t deadline_ms = 0, cancel_after_ms = -1;  // -1 = no cancellation
  int batch_window_us = 0;
  std::size_t batch_max = 0;
  bool warm = false, baseline = false;
  int listen_port = -1;  // -1 = replay mode; 0 = ephemeral
  std::string listen_host = "127.0.0.1";
  std::size_t max_conns = 256;
  std::int64_t frame_timeout_ms = 2000;

  // Strict whole-token parsing (util/strict_parse.hpp): "--requests 16abc"
  // must be a usage error, not a silent 16, and "--requests foo" a clean
  // message, not an unhandled std::invalid_argument.
  std::string current_key;
  auto size_value = [&](const std::string& v) {
    std::int64_t n = strict_stoll(v);
    if (n < 0) throw std::invalid_argument("negative value " + v);
    return static_cast<std::size_t>(n);
  };
  try {
    for (int i = 1; i < argc; ++i) {
      std::string key = argv[i];
      current_key = key;
      auto need_value = [&]() -> std::string {
        if (i + 1 >= argc) usage("missing value for " + key);
        return argv[++i];
      };
      if (key == "--stream") stream_path = need_value();
      else if (key == "--requests") requests = strict_stoi(need_value());
      else if (key == "--workers") workers = strict_stoi(need_value());
      else if (key == "--intra-op") intra_op = strict_stoi(need_value());
      else if (key == "--cache") cache_capacity = size_value(need_value());
      else if (key == "--memoize") memoize = size_value(need_value());
      else if (key == "--memoize-mb") memoize_mb = size_value(need_value());
      else if (key == "--mem-budget") mem_budget = parse_size_bytes(need_value());
      else if (key == "--tile-pool") tile_pool = size_value(need_value());
      else if (key == "--max-queue") max_queue = size_value(need_value());
      else if (key == "--plan-store") { plan_store = size_value(need_value()); plan_store_given = true; }
      else if (key == "--plan-store-dir") plan_store_dir = need_value();
      else if (key == "--admission") admission = parse_admission_policy(need_value());
      else if (key == "--deadline-ms") deadline_ms = parse_duration_ms(need_value());
      else if (key == "--cancel-after") cancel_after_ms = parse_duration_ms(need_value());
      else if (key == "--batch-window") batch_window_us = strict_stoi(need_value());
      else if (key == "--batch-max") batch_max = size_value(need_value());
      else if (key == "--fault") fault_spec = need_value();
      else if (key == "--seed") seed = strict_stoull(need_value());
      else if (key == "--json") json_path = need_value();
      else if (key == "--warm") warm = true;
      else if (key == "--baseline") baseline = true;
      else if (key == "--listen") {
        listen_port = strict_stoi(need_value());
        if (listen_port < 0 || listen_port > 65535)
          usage("--listen port must be in [0, 65535]");
      }
      else if (key == "--host") listen_host = need_value();
      else if (key == "--max-conns") max_conns = size_value(need_value());
      else if (key == "--frame-timeout") frame_timeout_ms = parse_duration_ms(need_value());
      else usage("unknown flag: " + key);
    }
  } catch (const std::exception& e) {
    usage("bad value for " + current_key + ": " + e.what());
  }
  if (!plan_store_dir.empty() && !plan_store_given) plan_store = 32;
  if (memoize_mb > (std::numeric_limits<std::size_t>::max() >> 20))
    usage("--memoize-mb too large");  // << 20 below would overflow
  if (!fault_spec.empty()) {
    // Validate here so a typo is a usage error, not a service-constructor
    // throw after the workload has already been materialized.
    try {
      (void)parse_fault_spec(fault_spec);
    } catch (const std::exception& e) {
      usage(std::string("bad value for --fault: ") + e.what());
    }
  }

  // Parse and materialize outside the timed region: dataset/model
  // generation stands in for request decoding, which a real frontend does
  // off the hot path. Any workload error (bad stream line, unknown
  // dataset tag) reports through usage() instead of an uncaught throw.
  std::vector<ServiceRequest> pool;
  if (listen_port < 0) {
    try {
      std::vector<StreamRequestSpec> specs =
          stream_path.empty() ? synthetic_stream(requests, seed)
                              : expand_stream(read_request_stream_file(stream_path));
      if (specs.empty()) usage("empty request stream");
      std::printf("replaying %zu requests (%s)\n", specs.size(),
                  stream_path.empty() ? "synthetic mix" : stream_path.c_str());
      pool.reserve(specs.size());
      for (const StreamRequestSpec& spec : specs)
        pool.push_back(materialize_request(spec));
    } catch (const std::exception& e) {
      usage(e.what());
    }
  }

  ServiceOptions opts;
  opts.workers = workers;
  opts.cache_capacity = cache_capacity;
  opts.intra_op_threads = intra_op;
  opts.result_cache_capacity = memoize;
  opts.result_cache_bytes = memoize_mb << 20;
  opts.max_queue_depth = max_queue;
  opts.admission = admission;
  opts.plan_store_capacity = plan_store;
  opts.plan_store_dir = plan_store_dir;
  opts.memory_budget_bytes = mem_budget;
  opts.tile_pool_capacity = tile_pool;
  opts.default_deadline_ms = deadline_ms;
  opts.fault_spec = fault_spec;
  opts.batch_window_us = batch_window_us;
  opts.max_batch_size = batch_max;
  // Options are validated/resolved by the service; report the effective
  // worker count (no hidden cap).
  InferenceService service(opts);
  std::printf("service: %d workers, intra-op cap %d (0 = shared pool)\n",
              service.options().workers, service.options().intra_op_threads);
  if (memoize > 0)
    std::printf("memoization: up to %zu reports / %zu MiB\n", memoize, memoize_mb);
  if (max_queue > 0)
    std::printf("admission: queue depth %zu, policy %s\n", max_queue,
                admission_policy_name(admission));
  if (plan_store > 0)
    std::printf("plan store: up to %zu plans%s%s\n", plan_store,
                plan_store_dir.empty() ? "" : ", disk tier ",
                plan_store_dir.c_str());
  if (mem_budget > 0)
    std::printf("memory budget: %.1f MiB shared across cache tiers\n",
                static_cast<double>(mem_budget) / (1024.0 * 1024.0));
  if (tile_pool > 0)
    std::printf("tile pool: up to %zu shared operand entries\n", tile_pool);
  if (deadline_ms > 0)
    std::printf("deadline: %lld ms per request (default)\n",
                static_cast<long long>(deadline_ms));
  if (batch_window_us > 0 || batch_max > 1)
    std::printf("batching: window %d us, max %zu per batch (0 = unlimited)\n",
                batch_window_us, batch_max);
  if (cancel_after_ms >= 0)
    std::printf("cancellation: cancelling outstanding requests %lld ms after submit\n",
                static_cast<long long>(cancel_after_ms));
  if (!fault_spec.empty())
    std::printf("fault injection: %s\n", fault_spec.c_str());

  if (listen_port >= 0) {
    NetServerOptions net;
    net.host = listen_host;
    net.port = static_cast<std::uint16_t>(listen_port);
    net.max_connections = max_conns;
    net.frame_timeout_ms = frame_timeout_ms;
    NetServer server(service, net);
    try {
      server.start();
    } catch (const std::exception& e) {
      usage(e.what());
    }
    std::printf("listening on %s:%u (max %zu connections, frame timeout %lld ms)\n",
                listen_host.c_str(), server.port(), max_conns,
                static_cast<long long>(frame_timeout_ms));
    std::fflush(stdout);
    std::signal(SIGINT, request_stop);
    std::signal(SIGTERM, request_stop);
    while (!g_stop_requested)
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    std::printf("stop requested, draining\n");
    server.stop();
    service.shutdown();

    NetServerStats ns = server.stats();
    CacheStats cs = service.cache_stats();
    RobustnessStats rs = service.robustness_stats();
    AdmissionStats as = service.admission_stats();
    BatchStats bs = service.batch_stats();
    MemoryBudgetStats ms = service.memory_budget_stats();
    TilePoolStats ps = service.tile_pool_stats();
    std::printf(
        "net: %lld accepted / %lld refused, %lld frames, %lld submits, "
        "%lld results, %lld errors, %lld protocol errors, %lld timeouts, "
        "%lld disconnect cancels\n",
        static_cast<long long>(ns.accepted), static_cast<long long>(ns.refused),
        static_cast<long long>(ns.frames), static_cast<long long>(ns.submits),
        static_cast<long long>(ns.results),
        static_cast<long long>(ns.errors_sent),
        static_cast<long long>(ns.protocol_errors),
        static_cast<long long>(ns.timeouts),
        static_cast<long long>(ns.disconnect_cancels));
    std::printf(
        "service: cache %lld hits / %lld misses; admission %lld accepted / "
        "%lld rejected / %lld shed; %lld cancelled, %lld+%lld expired, %lld "
        "failed\n",
        static_cast<long long>(cs.hits), static_cast<long long>(cs.misses),
        static_cast<long long>(as.accepted), static_cast<long long>(as.rejected),
        static_cast<long long>(as.shed), static_cast<long long>(rs.cancelled),
        static_cast<long long>(rs.expired_in_queue),
        static_cast<long long>(rs.expired_running),
        static_cast<long long>(rs.execution_failures));
    if (batch_window_us > 0 || batch_max > 1)
      std::printf(
          "batching: %lld batches / %lld requests (%.2f mean occupancy), "
          "%lld fused requests, %lld fused kernels\n",
          static_cast<long long>(bs.batches_formed),
          static_cast<long long>(bs.batched_requests), bs.mean_occupancy(),
          static_cast<long long>(bs.fused_requests),
          static_cast<long long>(bs.fused_kernels));
    std::printf(
        "memory: %lld bytes resident (high water %lld, limit %zu); tile pool "
        "%lld entries / %lld bytes, %lld shared refs\n",
        static_cast<long long>(ms.bytes), static_cast<long long>(ms.high_water),
        ms.limit_bytes, static_cast<long long>(ps.entries),
        static_cast<long long>(ps.bytes), static_cast<long long>(ps.shared_refs));
    if (!json_path.empty()) {
      std::ofstream f(json_path);
      if (!f) usage("cannot write --json file");
      f << "{\n"
        << "  \"mode\": \"listen\",\n"
        << "  \"port\": " << server.port() << ",\n"
        << "  \"accepted\": " << ns.accepted << ",\n"
        << "  \"refused\": " << ns.refused << ",\n"
        << "  \"frames\": " << ns.frames << ",\n"
        << "  \"submits\": " << ns.submits << ",\n"
        << "  \"results\": " << ns.results << ",\n"
        << "  \"errors_sent\": " << ns.errors_sent << ",\n"
        << "  \"protocol_errors\": " << ns.protocol_errors << ",\n"
        << "  \"timeouts\": " << ns.timeouts << ",\n"
        << "  \"disconnect_cancels\": " << ns.disconnect_cancels << ",\n"
        << "  \"cache_hits\": " << cs.hits << ",\n"
        << "  \"cache_misses\": " << cs.misses << ",\n"
        << "  \"admission_accepted\": " << as.accepted << ",\n"
        << "  \"admission_rejected\": " << as.rejected << ",\n"
        << "  \"admission_shed\": " << as.shed << ",\n"
        << "  \"cancelled\": " << rs.cancelled << ",\n"
        << "  \"expired_in_queue\": " << rs.expired_in_queue << ",\n"
        << "  \"expired_running\": " << rs.expired_running << ",\n"
        << "  \"execution_failures\": " << rs.execution_failures << ",\n"
        << "  \"batches_formed\": " << bs.batches_formed << ",\n"
        << "  \"batched_requests\": " << bs.batched_requests << ",\n"
        << "  \"fused_requests\": " << bs.fused_requests << ",\n"
        << "  \"fused_kernels\": " << bs.fused_kernels << ",\n"
        << "  \"batch_mean_occupancy\": " << bs.mean_occupancy() << ",\n"
        << "  \"budget_limit\": " << ms.limit_bytes << ",\n"
        << "  \"budget_bytes\": " << ms.bytes << ",\n"
        << "  \"budget_high_water\": " << ms.high_water << ",\n"
        << "  \"pool_entries\": " << ps.entries << ",\n"
        << "  \"pool_bytes\": " << ps.bytes << ",\n"
        << "  \"pool_shared_refs\": " << ps.shared_refs << "\n"
        << "}\n";
      std::printf("wrote %s\n", json_path.c_str());
    }
    return 0;
  }

  if (warm) {
    for (const ServiceRequest& req : pool)
      service.cache().get_or_compile(*req.model, *req.dataset, req.options.config);
    std::printf("warmed cache: %lld programs compiled\n",
                static_cast<long long>(service.cache_stats().entries));
  }

  Stopwatch wall;
  std::vector<RequestId> ids;
  ids.reserve(pool.size());
  for (const ServiceRequest& req : pool) ids.push_back(service.submit(req));

  // --cancel-after: a client-side canceller racing the workers, the way a
  // frontend cancels on client disconnect. cancel() on an already-terminal
  // request returns false, which is the common case for a late canceller.
  std::thread canceller;
  if (cancel_after_ms >= 0) {
    canceller = std::thread([&service, &ids, cancel_after_ms] {
      std::this_thread::sleep_for(std::chrono::milliseconds(cancel_after_ms));
      for (RequestId id : ids) {
        try {
          service.cancel(id);
        } catch (const std::invalid_argument&) {
          // id unknown (e.g. slot consumed by a racing wait) — fine.
        }
      }
    });
  }

  std::vector<double> latencies_ms;
  latencies_ms.reserve(ids.size());
  double sim_latency_ms = 0.0;
  std::size_t completed = 0, admission_rejected = 0, cancelled = 0,
              deadline_expired = 0, execution_failed = 0;
  for (RequestId id : ids) {
    RequestTiming timing;
    // The service's closed error taxonomy: every non-completed outcome is
    // one of these four types, so an uncaught throw here is a bug.
    try {
      InferenceReport rep = service.wait(id, &timing);
      latencies_ms.push_back(timing.total_ms);
      sim_latency_ms += rep.latency_ms;
      ++completed;
    } catch (const AdmissionRejectedError&) {
      ++admission_rejected;  // refused under --max-queue reject/shed
    } catch (const DeadlineExceededError&) {
      ++deadline_expired;  // --deadline-ms / deadline_ms= expiry
    } catch (const CancelledError&) {
      ++cancelled;  // --cancel-after (or shutdown abort)
    } catch (const ExecutionError&) {
      ++execution_failed;  // compile/execute failure, incl. injected faults
    }
  }
  if (canceller.joinable()) canceller.join();
  double service_wall_ms = wall.elapsed_ms();

  CacheStats cs = service.cache_stats();
  ResultCacheStats rcs = service.result_cache_stats();
  double throughput = static_cast<double>(completed) / (service_wall_ms / 1e3);
  std::sort(latencies_ms.begin(), latencies_ms.end());
  double p50 = percentile(latencies_ms, 50.0), p99 = percentile(latencies_ms, 99.0);
  std::printf("wall %.1f ms  throughput %.2f req/s  p50 %.1f ms  p99 %.1f ms\n",
              service_wall_ms, throughput, p50, p99);
  if (max_queue > 0)
    std::printf("admission: %zu completed, %zu rejected (policy %s)\n", completed,
                admission_rejected, admission_policy_name(admission));
  RobustnessStats rs = service.robustness_stats();
  if (cancelled + deadline_expired + execution_failed > 0 ||
      deadline_ms > 0 || cancel_after_ms >= 0 || !fault_spec.empty())
    std::printf(
        "robustness: %zu cancelled, %zu deadline-expired (%lld in queue / %lld "
        "running), %zu failed\n",
        cancelled, deadline_expired, static_cast<long long>(rs.expired_in_queue),
        static_cast<long long>(rs.expired_running), execution_failed);
  if (!fault_spec.empty()) {
    for (const auto& [site, st] : FaultInjector::global().all_stats())
      if (st.evaluations > 0)
        std::printf("fault %s: injected %lld / %lld evaluations\n", site.c_str(),
                    static_cast<long long>(st.injected),
                    static_cast<long long>(st.evaluations));
  }
  std::printf("cache: %lld hits / %lld misses / %lld evictions (%lld in-flight joins)\n",
              static_cast<long long>(cs.hits), static_cast<long long>(cs.misses),
              static_cast<long long>(cs.evictions),
              static_cast<long long>(cs.inflight_joins));
  if (memoize > 0)
    std::printf(
        "result cache: %lld hits / %lld misses / %lld evictions, %lld reports "
        "resident (~%.1f MiB)\n",
        static_cast<long long>(rcs.hits), static_cast<long long>(rcs.misses),
        static_cast<long long>(rcs.evictions), static_cast<long long>(rcs.entries),
        static_cast<double>(rcs.bytes) / (1024.0 * 1024.0));
  PlanStoreStats pss = service.plan_store_stats();
  if (plan_store > 0)
    std::printf(
        "plan store: %lld planned / %lld seeded (%lld exact) / %lld disk hits, "
        "%lld disk writes, %lld rejected, %lld disk errors, planning %.3f ms\n",
        static_cast<long long>(pss.planned), static_cast<long long>(pss.seeded),
        static_cast<long long>(pss.seeded_exact),
        static_cast<long long>(pss.disk_hits),
        static_cast<long long>(pss.disk_writes),
        static_cast<long long>(pss.rejected),
        static_cast<long long>(pss.disk_errors), pss.planning_ms);
  BatchStats bs = service.batch_stats();
  if (batch_window_us > 0 || batch_max > 1)
    std::printf(
        "batching: %lld batches / %lld requests (%.2f mean occupancy), %lld "
        "fused requests, %lld fused kernels\n",
        static_cast<long long>(bs.batches_formed),
        static_cast<long long>(bs.batched_requests), bs.mean_occupancy(),
        static_cast<long long>(bs.fused_requests),
        static_cast<long long>(bs.fused_kernels));
  MemoryBudgetStats ms = service.memory_budget_stats();
  TilePoolStats ps = service.tile_pool_stats();
  std::printf(
      "memory: %lld bytes resident (high water %lld, limit %zu); tile pool "
      "%lld entries / %lld bytes, %lld shared refs\n",
      static_cast<long long>(ms.bytes), static_cast<long long>(ms.high_water),
      ms.limit_bytes, static_cast<long long>(ps.entries),
      static_cast<long long>(ps.bytes), static_cast<long long>(ps.shared_refs));
  if (completed > 0)
    std::printf("mean simulated accelerator latency %.3f ms/request\n",
                sim_latency_ms / static_cast<double>(completed));

  double sequential_wall_ms = 0.0;
  if (baseline) {
    // The pre-service pattern: compile + execute per request, no cache,
    // no concurrency.
    Stopwatch sw;
    for (const ServiceRequest& req : pool) {
      CompiledProgram prog = compile(*req.model, *req.dataset, req.options.config);
      (void)run_compiled(prog, req.options.runtime);
    }
    sequential_wall_ms = sw.elapsed_ms();
    std::printf("sequential uncached loop: %.1f ms  -> service speedup %.2fx\n",
                sequential_wall_ms, sequential_wall_ms / service_wall_ms);
  }

  if (!json_path.empty()) {
    std::ofstream f(json_path);
    if (!f) usage("cannot write --json file");
    f << "{\n"
      << "  \"requests\": " << ids.size() << ",\n"
      << "  \"completed\": " << completed << ",\n"
      << "  \"admission_rejected\": " << admission_rejected << ",\n"
      << "  \"cancelled\": " << cancelled << ",\n"
      << "  \"deadline_expired\": " << deadline_expired << ",\n"
      << "  \"execution_failed\": " << execution_failed << ",\n"
      << "  \"expired_in_queue\": " << rs.expired_in_queue << ",\n"
      << "  \"expired_running\": " << rs.expired_running << ",\n"
      << "  \"deadline_ms\": " << deadline_ms << ",\n"
      << "  \"fault_spec\": \"" << fault_spec << "\",\n"
      << "  \"admission_policy\": \"" << admission_policy_name(admission) << "\",\n"
      << "  \"max_queue_depth\": " << max_queue << ",\n"
      << "  \"workers\": " << service.options().workers << ",\n"
      << "  \"intra_op_threads\": " << service.options().intra_op_threads << ",\n"
      << "  \"cache_capacity\": " << cache_capacity << ",\n"
      << "  \"result_cache_capacity\": " << memoize << ",\n"
      << "  \"wall_ms\": " << service_wall_ms << ",\n"
      << "  \"throughput_req_per_s\": " << throughput << ",\n"
      << "  \"latency_p50_ms\": " << p50 << ",\n"
      << "  \"latency_p99_ms\": " << p99 << ",\n"
      << "  \"cache_hits\": " << cs.hits << ",\n"
      << "  \"cache_misses\": " << cs.misses << ",\n"
      << "  \"cache_evictions\": " << cs.evictions << ",\n"
      << "  \"result_cache_hits\": " << rcs.hits << ",\n"
      << "  \"result_cache_misses\": " << rcs.misses << ",\n"
      << "  \"result_cache_evictions\": " << rcs.evictions << ",\n"
      << "  \"result_cache_bytes\": " << rcs.bytes << ",\n"
      << "  \"plan_store_capacity\": " << plan_store << ",\n"
      << "  \"plan_planned\": " << pss.planned << ",\n"
      << "  \"plan_seeded\": " << pss.seeded << ",\n"
      << "  \"plan_seeded_exact\": " << pss.seeded_exact << ",\n"
      << "  \"plan_disk_hits\": " << pss.disk_hits << ",\n"
      << "  \"plan_disk_writes\": " << pss.disk_writes << ",\n"
      << "  \"plan_rejected\": " << pss.rejected << ",\n"
      << "  \"plan_disk_errors\": " << pss.disk_errors << ",\n"
      << "  \"plan_planning_ms\": " << pss.planning_ms << ",\n"
      << "  \"budget_limit\": " << ms.limit_bytes << ",\n"
      << "  \"budget_bytes\": " << ms.bytes << ",\n"
      << "  \"budget_high_water\": " << ms.high_water << ",\n"
      << "  \"pool_entries\": " << ps.entries << ",\n"
      << "  \"pool_bytes\": " << ps.bytes << ",\n"
      << "  \"pool_shared_refs\": " << ps.shared_refs << ",\n"
      << "  \"batch_window_us\": " << batch_window_us << ",\n"
      << "  \"batch_max\": " << batch_max << ",\n"
      << "  \"batches_formed\": " << bs.batches_formed << ",\n"
      << "  \"batched_requests\": " << bs.batched_requests << ",\n"
      << "  \"fused_batches\": " << bs.fused_batches << ",\n"
      << "  \"fused_requests\": " << bs.fused_requests << ",\n"
      << "  \"fused_kernels\": " << bs.fused_kernels << ",\n"
      << "  \"batch_mean_occupancy\": " << bs.mean_occupancy() << ",\n"
      << "  \"sequential_wall_ms\": " << sequential_wall_ms << "\n"
      << "}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
