// dynasparse_cli — run the full pipeline from the command line.
//
//   dynasparse_cli --dataset CO --model gcn --strategy dynamic
//   dynasparse_cli --graph g.txt --features f.txt --model sage --json out.json
//
// Flags:
//   --dataset TAG     registry dataset (CI/CO/PU/FL/NE/RE)
//   --scale N         registry downscale (0 = dataset default, 1 = paper)
//   --graph PATH      edge-list file (overrides --dataset; needs --features)
//   --features PATH   feature file for --graph
//   --model NAME      gcn | sage | gin | sgc          (default gcn)
//   --hidden N        hidden dimension                 (default 16)
//   --classes N       output dimension for --graph     (default 8)
//   --strategy NAME   dynamic | static1 | static2      (default dynamic)
//   --prune P         weight sparsity in [0,1]         (default 0)
//   --seed S          RNG seed                         (default 2023)
//   --csv PATH        write per-kernel CSV
//   --json PATH       write report JSON
//   --trace PATH      write a chrome://tracing timeline of the schedule

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>

#include "core/engine.hpp"
#include "io/graph_io.hpp"
#include "io/report_io.hpp"
#include "io/trace_io.hpp"
#include "service/request_stream.hpp"
#include "util/strict_parse.hpp"

using namespace dynasparse;

namespace {

[[noreturn]] void usage(const char* msg) {
  std::fprintf(stderr, "error: %s\n(see header of tools/dynasparse_cli.cpp)\n", msg);
  std::exit(2);
}

GnnModelKind parse_model(const std::string& s) {
  try {
    return parse_model_kind(s);
  } catch (const std::runtime_error&) {
    usage("unknown --model");
  }
}

MappingStrategy parse_strategy(const std::string& s) {
  try {
    return parse_strategy_name(s);
  } catch (const std::runtime_error&) {
    usage("unknown --strategy");
  }
}

/// Strict whole-token numeric flags (util/strict_parse.hpp): "--scale 4x2"
/// and "--seed foo" both die with a clean usage error naming the flag,
/// instead of a silent misparse or an unhandled std::invalid_argument.
template <typename Parse>
auto parse_flag(const char* flag, const std::string& value, Parse parse)
    -> decltype(parse(value)) {
  try {
    return parse(value);
  } catch (const std::exception&) {
    usage(("bad value for --" + std::string(flag) + ": " + value).c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> opt;
  for (int i = 1; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) usage("flags start with --");
    if (i + 1 >= argc) usage(("missing value for " + key).c_str());
    opt[key.substr(2)] = argv[++i];
  }
  auto get = [&](const char* k, const std::string& def) {
    auto it = opt.find(k);
    return it == opt.end() ? def : it->second;
  };

  std::uint64_t seed = parse_flag("seed", get("seed", "2023"), strict_stoull);
  GnnModelKind kind = parse_model(get("model", "gcn"));
  MappingStrategy strategy = parse_strategy(get("strategy", "dynamic"));
  double prune = parse_flag("prune", get("prune", "0"), strict_stod);

  Dataset ds;
  if (opt.count("graph")) {
    if (!opt.count("features")) usage("--graph needs --features");
    ds.graph = read_edge_list_file(opt["graph"]);
    ds.features = read_features_file(opt["features"]);
    if (ds.features.rows() != ds.graph.num_vertices())
      usage("feature rows != graph vertices");
    ds.spec.name = opt["graph"];
    ds.spec.tag = "FILE";
    ds.spec.vertices = ds.graph.num_vertices();
    ds.spec.edges = ds.graph.num_edges();
    ds.spec.feature_dim = ds.features.cols();
    ds.spec.num_classes = parse_flag("classes", get("classes", "8"), strict_stoll);
    ds.spec.hidden_dim = parse_flag("hidden", get("hidden", "16"), strict_stoll);
  } else {
    ds = generate_dataset(dataset_by_tag(get("dataset", "CO")),
                          parse_flag("scale", get("scale", "0"), strict_stoi), seed);
    if (opt.count("hidden"))
      ds.spec.hidden_dim = parse_flag("hidden", opt["hidden"], strict_stoll);
  }

  Rng rng(seed + 1);
  GnnModel model = build_model(kind, ds.spec.feature_dim, ds.spec.hidden_dim,
                               ds.spec.num_classes, rng);
  if (prune > 0.0) prune_model(model, prune);

  EngineOptions options;
  options.runtime.strategy = strategy;
  options.runtime.collect_timeline = opt.count("trace") > 0;
  InferenceReport report = run_inference(model, ds, options);
  std::cout << report.summary() << "\n\n" << report.kernel_table();

  if (opt.count("csv")) {
    std::ofstream f(opt["csv"]);
    if (!f) usage("cannot write --csv file");
    f << report_to_csv(report);
    std::cout << "wrote " << opt["csv"] << "\n";
  }
  if (opt.count("json")) {
    std::ofstream f(opt["json"]);
    if (!f) usage("cannot write --json file");
    f << report_to_json(report);
    std::cout << "wrote " << opt["json"] << "\n";
  }
  if (opt.count("trace")) {
    std::ofstream f(opt["trace"]);
    if (!f) usage("cannot write --trace file");
    f << execution_to_chrome_trace(report.execution, options.config);
    std::cout << "wrote " << opt["trace"] << " (open in chrome://tracing)\n";
  }
  return 0;
}
