// dynasparse_lint — repo-invariant lint, exit-code gated in CI.
//
// Nine PRs of growth accumulated contracts enforced only by convention;
// this tool turns the four load-bearing ones into machine checks:
//
//   [raw-parse]          No raw getenv / std::stoi-family / atoi / strtol
//                        outside util/strict_parse.* — every numeric or
//                        env knob goes through the whole-token parsers so
//                        a typo can never silently change behavior.
//   [error-taxonomy]     No `std::runtime_error(...)` constructed in
//                        src/service or src/net: those layers speak the
//                        closed error taxonomy (ShutdownError,
//                        NetSetupError, PlanSnapshotError, ...) so the
//                        wire layer can map every failure deliberately.
//                        Deriving from std::runtime_error is fine — only
//                        constructing the base type is flagged.
//   [fault-site]         Every fault_point(...) argument must be a
//                        kFault* constant from the declared-site registry
//                        in src/util/fault_injection.hpp (or a literal
//                        registered there), so DYNASPARSE_FAULT_SPEC can
//                        never name a dead site.
//   [signature-tripwire] Every repo struct hashed by const-reference in
//                        src/compiler/signature.cpp must have a
//                        static_assert(sizeof(T) == N) tripwire in that
//                        file, so adding a field without updating the
//                        hash fails the build instead of silently
//                        aliasing cache keys.
//
// A finding can be waived per line with `// dynasparse-lint: allow(rule)`
// — the annotation is the audit trail.
//
// Modes:
//   dynasparse_lint --root <repo-root>       lint the tree; exit 1 on findings
//   dynasparse_lint --selftest <fixture-dir> lint the fixture tree and require
//                                            the findings to match GOLDEN.txt
//                                            exactly (proves the rules fire)
//
// The scanner is a line-oriented token pass, not a compiler: it strips
// comments and string/char literals with a small state machine (raw
// strings included) and matches whole identifiers. That is deliberate —
// the rules above are all lexical, and a zero-dependency binary keeps
// the check runnable everywhere the build runs.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Finding {
  std::string file;  // repo-relative, '/'-separated
  long line = 0;
  std::string rule;
  std::string message;

  std::string format() const {
    std::ostringstream os;
    os << file << ":" << line << ": [" << rule << "] " << message;
    return os.str();
  }
  bool operator<(const Finding& o) const {
    if (file != o.file) return file < o.file;
    if (line != o.line) return line < o.line;
    if (rule != o.rule) return rule < o.rule;
    return message < o.message;
  }
};

/// One scanned file: raw lines (for allow-marker lookup) plus two views
/// with comments removed — `code` keeps string literals (fault_point
/// arguments, registry definitions), `code_nostr` blanks them too (so a
/// log message mentioning "atoi" can never trip a rule).
struct FileView {
  std::string rel;
  std::vector<std::string> raw;
  std::vector<std::string> code;
  std::vector<std::string> code_nostr;
};

/// Strip //, /*...*/ and (optionally) string/char literals, preserving
/// line structure and column positions (stripped chars become spaces).
std::vector<std::string> strip(const std::string& text, bool blank_strings) {
  std::vector<std::string> lines;
  std::string cur;
  enum class St { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
  St st = St::kCode;
  std::string raw_delim;  // for R"delim( ... )delim"
  const std::size_t n = text.size();
  for (std::size_t i = 0; i < n; ++i) {
    const char c = text[i];
    if (c == '\n') {
      if (st == St::kLineComment) st = St::kCode;
      lines.push_back(cur);
      cur.clear();
      continue;
    }
    switch (st) {
      case St::kCode: {
        const char next = i + 1 < n ? text[i + 1] : '\0';
        if (c == '/' && next == '/') {
          st = St::kLineComment;
          cur += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          st = St::kBlockComment;
          cur += "  ";
          ++i;
        } else if (c == '"') {
          // R"delim( opens a raw string; the R (or u8R etc.) was already
          // emitted as code, which is harmless — it is not an identifier
          // any rule matches alone.
          bool raw = false;
          if (i > 0 && text[i - 1] == 'R') {
            std::size_t j = i + 1;
            raw_delim.clear();
            while (j < n && text[j] != '(' && text[j] != '\n' &&
                   raw_delim.size() < 16)
              raw_delim += text[j++];
            if (j < n && text[j] == '(') raw = true;
          }
          if (raw) {
            st = St::kRawString;
            cur += blank_strings ? ' ' : c;
          } else {
            st = St::kString;
            cur += blank_strings ? ' ' : c;
          }
        } else if (c == '\'') {
          st = St::kChar;
          cur += blank_strings ? ' ' : c;
        } else {
          cur += c;
        }
        break;
      }
      case St::kLineComment:
        cur += ' ';
        break;
      case St::kBlockComment:
        if (c == '*' && i + 1 < n && text[i + 1] == '/') {
          st = St::kCode;
          cur += "  ";
          ++i;
        } else {
          cur += ' ';
        }
        break;
      case St::kString:
        if (c == '\\' && i + 1 < n) {
          cur += blank_strings ? "  " : text.substr(i, 2);
          ++i;
        } else {
          if (c == '"') st = St::kCode;
          cur += blank_strings ? ' ' : c;
        }
        break;
      case St::kChar:
        if (c == '\\' && i + 1 < n) {
          cur += blank_strings ? "  " : text.substr(i, 2);
          ++i;
        } else {
          if (c == '\'') st = St::kCode;
          cur += blank_strings ? ' ' : c;
        }
        break;
      case St::kRawString: {
        const std::string close = ")" + raw_delim + "\"";
        if (text.compare(i, close.size(), close) == 0) {
          st = St::kCode;
          cur += blank_strings ? std::string(close.size(), ' ')
                               : close;
          i += close.size() - 1;
        } else {
          cur += blank_strings ? ' ' : c;
        }
        break;
      }
    }
  }
  if (!cur.empty() || text.empty() || text.back() != '\n') lines.push_back(cur);
  return lines;
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Find whole-identifier occurrences of `id` in `line`; returns columns.
std::vector<std::size_t> find_ident(const std::string& line, const std::string& id) {
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while ((pos = line.find(id, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !ident_char(line[pos - 1]);
    const std::size_t end = pos + id.size();
    const bool right_ok = end >= line.size() || !ident_char(line[end]);
    if (left_ok && right_ok) out.push_back(pos);
    pos = end;
  }
  return out;
}

bool allow_marker(const std::string& raw_line, const std::string& rule) {
  return raw_line.find("dynasparse-lint: allow(" + rule + ")") != std::string::npos;
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// ---- rule: raw-parse -------------------------------------------------------

const char* const kRawParseIdents[] = {
    "getenv", "atoi",  "atol",  "atoll",  "atof",  "strtol", "strtoul",
    "strtoll", "strtoull", "strtod", "strtof", "stoi", "stol", "stoul",
    "stoll", "stoull", "stod", "stof",
};

void check_raw_parse(const FileView& f, std::vector<Finding>& out) {
  if (f.rel.find("util/strict_parse.") != std::string::npos) return;
  for (std::size_t i = 0; i < f.code_nostr.size(); ++i) {
    for (const char* id : kRawParseIdents) {
      if (find_ident(f.code_nostr[i], id).empty()) continue;
      if (allow_marker(f.raw[i], "raw-parse")) continue;
      out.push_back({f.rel, static_cast<long>(i + 1), "raw-parse",
                     std::string("raw parse/env call '") + id +
                         "' outside util/strict_parse; use the strict_* "
                         "wrappers (util/strict_parse.hpp)"});
    }
  }
}

// ---- rule: error-taxonomy --------------------------------------------------

void check_error_taxonomy(const FileView& f, std::vector<Finding>& out) {
  if (!starts_with(f.rel, "src/service/") && !starts_with(f.rel, "src/net/"))
    return;
  for (std::size_t i = 0; i < f.code_nostr.size(); ++i) {
    const std::string& line = f.code_nostr[i];
    for (std::size_t col : find_ident(line, "runtime_error")) {
      // Only flag CONSTRUCTION: `runtime_error` followed by '('. Base
      // clauses (`: std::runtime_error {`) and inherited constructors
      // (`using std::runtime_error::runtime_error;`) define taxonomy
      // types and are the point of the rule, not violations of it.
      std::size_t j = col + std::string("runtime_error").size();
      while (j < line.size() && std::isspace(static_cast<unsigned char>(line[j])))
        ++j;
      if (j >= line.size() || line[j] != '(') continue;
      if (allow_marker(f.raw[i], "error-taxonomy")) continue;
      out.push_back({f.rel, static_cast<long>(i + 1), "error-taxonomy",
                     "std::runtime_error constructed in the service/net "
                     "layer; throw a closed-taxonomy type instead "
                     "(service/errors.hpp, net/errors.hpp)"});
    }
  }
}

// ---- rule: fault-site ------------------------------------------------------

std::set<std::string> load_fault_registry(const fs::path& root, bool* found) {
  std::set<std::string> sites;
  const fs::path reg = root / "src" / "util" / "fault_injection.hpp";
  *found = fs::exists(reg);
  if (!*found) return sites;
  for (const std::string& line : strip(read_file(reg), false)) {
    // inline constexpr const char* kFaultX = "a.b";
    const std::size_t k = line.find("kFault");
    if (k == std::string::npos) continue;
    const std::size_t q1 = line.find('"', k);
    if (q1 == std::string::npos) continue;
    const std::size_t q2 = line.find('"', q1 + 1);
    if (q2 == std::string::npos) continue;
    sites.insert(line.substr(q1 + 1, q2 - q1 - 1));
  }
  return sites;
}

void check_fault_sites(const FileView& f, const std::set<std::string>& registry,
                       std::vector<Finding>& out) {
  // The registry header itself defines fault_point() and the constants.
  if (f.rel.find("util/fault_injection.") != std::string::npos) return;
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    const std::string& line = f.code[i];
    for (std::size_t col : find_ident(line, "fault_point")) {
      std::size_t j = col + std::string("fault_point").size();
      while (j < line.size() && std::isspace(static_cast<unsigned char>(line[j])))
        ++j;
      if (j >= line.size() || line[j] != '(') continue;
      ++j;
      while (j < line.size() && std::isspace(static_cast<unsigned char>(line[j])))
        ++j;
      if (j >= line.size()) continue;
      if (allow_marker(f.raw[i], "fault-site")) continue;
      if (line[j] == '"') {
        const std::size_t q2 = line.find('"', j + 1);
        const std::string site =
            q2 == std::string::npos ? "" : line.substr(j + 1, q2 - j - 1);
        if (registry.count(site)) continue;
        out.push_back({f.rel, static_cast<long>(i + 1), "fault-site",
                       "fault_point(\"" + site +
                           "\") names a site missing from the registry in "
                           "src/util/fault_injection.hpp"});
      } else if (ident_char(line[j])) {
        std::size_t e = j;
        while (e < line.size() && ident_char(line[e])) ++e;
        const std::string arg = line.substr(j, e - j);
        if (starts_with(arg, "kFault")) continue;
        out.push_back({f.rel, static_cast<long>(i + 1), "fault-site",
                       "fault_point argument '" + arg +
                           "' is not a kFault* constant from "
                           "src/util/fault_injection.hpp"});
      }
    }
  }
}

// ---- rule: signature-tripwire ----------------------------------------------

void check_signature_tripwires(const fs::path& root, std::vector<Finding>& out) {
  const fs::path sig = root / "src" / "compiler" / "signature.cpp";
  if (!fs::exists(sig)) return;
  const std::string text = read_file(sig);
  const std::vector<std::string> code = strip(text, true);
  const std::vector<std::string> raw = strip(text, false);

  // Hashed types: every `const T&` / `const std::vector<T>&` parameter or
  // local where T is a repo struct (capitalized, unqualified).
  struct Use {
    std::string type;
    long line;
  };
  std::vector<Use> uses;
  std::set<std::string> seen;
  for (std::size_t i = 0; i < code.size(); ++i) {
    const std::string& line = code[i];
    for (std::size_t col : find_ident(line, "const")) {
      std::size_t j = col + 5;
      while (j < line.size() && std::isspace(static_cast<unsigned char>(line[j])))
        ++j;
      std::string inner;
      if (line.compare(j, 12, "std::vector<") == 0) {
        std::size_t e = j + 12;
        std::size_t k = e;
        while (k < line.size() && line[k] != '>') ++k;
        if (k >= line.size() || (k + 1 < line.size() && line[k + 1] != '&' &&
                                 line[k + 1] != ' '))
          continue;
        inner = line.substr(e, k - e);
        std::size_t a = k + 1;
        while (a < line.size() &&
               std::isspace(static_cast<unsigned char>(line[a])))
          ++a;
        if (a >= line.size() || line[a] != '&') continue;
      } else {
        std::size_t e = j;
        while (e < line.size() && ident_char(line[e])) ++e;
        inner = line.substr(j, e - j);
        std::size_t a = e;
        while (a < line.size() &&
               std::isspace(static_cast<unsigned char>(line[a])))
          ++a;
        if (a >= line.size() || line[a] != '&') continue;
      }
      if (inner.empty() || !std::isupper(static_cast<unsigned char>(inner[0])))
        continue;
      if (inner.find(':') != std::string::npos) continue;  // std:: etc.
      if (!seen.insert(inner).second) continue;
      uses.push_back({inner, static_cast<long>(i + 1)});
    }
  }

  for (const Use& u : uses) {
    bool asserted = false;
    for (const std::string& line : code) {
      const std::size_t a = line.find("static_assert");
      if (a == std::string::npos) continue;
      if (!find_ident(line, u.type).empty() &&
          line.find("sizeof", a) != std::string::npos) {
        asserted = true;
        break;
      }
    }
    if (asserted) continue;
    if (allow_marker(raw[static_cast<std::size_t>(u.line - 1)],
                     "signature-tripwire"))
      continue;
    out.push_back(
        {"src/compiler/signature.cpp", u.line, "signature-tripwire",
         "'" + u.type +
             "' is hashed here but has no static_assert(sizeof(" + u.type +
             ") == ...) tripwire in this file; adding a field without "
             "updating the hash must fail the build"});
  }
}

// ---- driver ----------------------------------------------------------------

bool scannable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

std::vector<Finding> lint_tree(const fs::path& root) {
  std::vector<Finding> findings;
  bool registry_found = false;
  const std::set<std::string> registry = load_fault_registry(root, &registry_found);

  static const char* const kRoots[] = {"src", "tools", "bench", "tests",
                                       "examples"};
  std::vector<fs::path> files;
  for (const char* sub : kRoots) {
    const fs::path dir = root / sub;
    if (!fs::is_directory(dir)) continue;
    for (const auto& ent : fs::recursive_directory_iterator(dir)) {
      if (!ent.is_regular_file() || !scannable(ent.path())) continue;
      const std::string rel =
          fs::relative(ent.path(), root).generic_string();
      // The fixture tree contains violations on purpose; build trees
      // contain generated copies.
      if (rel.find("lint_fixtures") != std::string::npos) continue;
      if (rel.find("build") == 0) continue;
      files.push_back(ent.path());
    }
  }
  std::sort(files.begin(), files.end());

  for (const fs::path& p : files) {
    FileView f;
    f.rel = fs::relative(p, root).generic_string();
    const std::string text = read_file(p);
    // allow markers live in comments, so the marker view is the raw text
    // split into lines, not a stripped view.
    {
      std::string cur;
      for (char c : text) {
        if (c == '\n') {
          f.raw.push_back(cur);
          cur.clear();
        } else {
          cur += c;
        }
      }
      if (!cur.empty()) f.raw.push_back(cur);
    }
    f.code = strip(text, false);
    f.code_nostr = strip(text, true);

    check_raw_parse(f, findings);
    check_error_taxonomy(f, findings);
    if (registry_found) check_fault_sites(f, registry, findings);
  }

  check_signature_tripwires(root, findings);
  std::sort(findings.begin(), findings.end());
  return findings;
}

int run_selftest(const fs::path& fixture_dir) {
  const fs::path golden_path = fixture_dir / "GOLDEN.txt";
  if (!fs::exists(golden_path)) {
    std::fprintf(stderr, "dynasparse_lint: no GOLDEN.txt in %s\n",
                 fixture_dir.string().c_str());
    return 2;
  }
  std::vector<std::string> golden;
  {
    std::ifstream in(golden_path);
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty() || line[0] == '#') continue;
      golden.push_back(line);
    }
  }
  std::sort(golden.begin(), golden.end());

  std::vector<std::string> got;
  for (const Finding& f : lint_tree(fixture_dir)) got.push_back(f.format());

  if (golden.empty()) {
    // An empty golden list means the fixture tree went missing or the
    // rules stopped firing — either way the self-test proves nothing.
    std::fprintf(stderr, "dynasparse_lint: GOLDEN.txt lists no findings\n");
    return 2;
  }

  bool ok = true;
  for (const std::string& g : golden) {
    if (std::find(got.begin(), got.end(), g) == got.end()) {
      std::fprintf(stderr, "MISSING (expected, not reported): %s\n", g.c_str());
      ok = false;
    }
  }
  for (const std::string& g : got) {
    if (std::find(golden.begin(), golden.end(), g) == golden.end()) {
      std::fprintf(stderr, "UNEXPECTED (reported, not golden): %s\n", g.c_str());
      ok = false;
    }
  }
  if (!ok) return 1;
  std::printf("dynasparse_lint selftest: %zu/%zu fixture findings matched\n",
              got.size(), golden.size());
  return 0;
}

void usage() {
  std::fprintf(stderr,
               "usage: dynasparse_lint --root <repo-root>\n"
               "       dynasparse_lint --selftest <fixture-dir>\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    usage();
    return 2;
  }
  const std::string mode = argv[1];
  const fs::path dir = argv[2];
  if (!fs::is_directory(dir)) {
    std::fprintf(stderr, "dynasparse_lint: not a directory: %s\n",
                 dir.string().c_str());
    return 2;
  }
  if (mode == "--selftest") return run_selftest(dir);
  if (mode != "--root") {
    usage();
    return 2;
  }
  const std::vector<Finding> findings = lint_tree(dir);
  for (const Finding& f : findings) std::printf("%s\n", f.format().c_str());
  if (!findings.empty()) {
    std::fprintf(stderr, "dynasparse_lint: %zu finding(s)\n", findings.size());
    return 1;
  }
  std::printf("dynasparse_lint: clean\n");
  return 0;
}
