// dynasparse_loadgen — open-loop load generator for `dynasparse_serve
// --listen` (the wire protocol in src/net/wire.hpp).
//
//   dynasparse_serve --listen 7411 --workers 4 &
//   dynasparse_loadgen --port 7411 --rate 50 --requests 200
//
// Open loop means arrivals are *scheduled*, not paced by responses: a
// seeded Poisson process (exponential inter-arrival gaps at --rate
// req/s) fixes every request's send time up front, and each request's
// latency is measured from its SCHEDULED arrival to its response. A
// stalled server therefore inflates the latencies of every request that
// should have been sent meanwhile — the coordinated-omission-free
// number — rather than quietly slowing the offered load the way a
// closed loop (send, wait, repeat) does.
//
// Flags:
//   --port P          server port (required)
//   --host H          server address           (default 127.0.0.1)
//   --rate R          offered load, requests/s (default 50)
//   --requests N      total requests to send   (default 200)
//   --connections C   client connections; arrivals round-robin across
//                     them, one submitter + one reaper thread each
//                     (default 4)
//   --deadline-ms D   per-request deadline carried in each SUBMIT
//                     (duration; default 0 = server default)
//   --seed S          seed for workload + arrival process (default 2023)
//   --timeout D       per-connection receive timeout (default 30s)
//   --json PATH       write the metrics as JSON
//   --slo-p99-ms X    exit 1 if completed-request p99 exceeds X ms
//   --slo-error-rate F  exit 1 if (errors / requests) exceeds F
//                     (deadline/cancel/admission/execution errors count;
//                     a transport failure is always exit 2)
//
// The workload cycles the same deterministic synthetic roster the
// replay mode uses (service/request_stream.hpp synthetic_stream), so
// server-side caches behave as they would under `--requests` replay.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "service/request_stream.hpp"
#include "util/strict_parse.hpp"

using namespace dynasparse;
using Clock = std::chrono::steady_clock;

namespace {

[[noreturn]] void usage(const std::string& msg) {
  std::fprintf(stderr,
               "error: %s\n(see header of tools/dynasparse_loadgen.cpp)\n",
               msg.c_str());
  std::exit(2);
}

double percentile(const std::vector<double>& sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  double rank = p / 100.0 * static_cast<double>(sorted_ms.size() - 1);
  std::size_t lo = static_cast<std::size_t>(rank);
  std::size_t hi = std::min(lo + 1, sorted_ms.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return sorted_ms[lo] * (1.0 - frac) + sorted_ms[hi] * frac;
}

/// One request's plan and fate, owned by its connection's two threads.
struct Shot {
  StreamRequestSpec spec;
  double sched_ms = 0.0;  // scheduled arrival, relative to test start
};

struct ConnTally {
  std::vector<double> latencies_ms;  // completed only, from sched time
  std::int64_t completed = 0;
  std::map<std::string, std::int64_t> errors;  // wire_error_name -> count
  std::string transport_error;                 // non-empty = conn died
};

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1", json_path;
  int port = -1, total_requests = 200, connections = 4;
  double rate = 50.0, slo_p99_ms = -1.0, slo_error_rate = -1.0;
  std::uint64_t seed = 2023;
  std::int64_t deadline_ms = 0, timeout_ms = 30000;

  std::string current_key;
  try {
    for (int i = 1; i < argc; ++i) {
      std::string key = argv[i];
      current_key = key;
      auto need_value = [&]() -> std::string {
        if (i + 1 >= argc) usage("missing value for " + key);
        return argv[++i];
      };
      if (key == "--port") port = strict_stoi(need_value());
      else if (key == "--host") host = need_value();
      else if (key == "--rate") rate = strict_stod(need_value());
      else if (key == "--requests") total_requests = strict_stoi(need_value());
      else if (key == "--connections") connections = strict_stoi(need_value());
      else if (key == "--deadline-ms") deadline_ms = parse_duration_ms(need_value());
      else if (key == "--seed") seed = strict_stoull(need_value());
      else if (key == "--timeout") timeout_ms = parse_duration_ms(need_value());
      else if (key == "--json") json_path = need_value();
      else if (key == "--slo-p99-ms") slo_p99_ms = strict_stod(need_value());
      else if (key == "--slo-error-rate") slo_error_rate = strict_stod(need_value());
      else usage("unknown flag: " + key);
    }
  } catch (const std::exception& e) {
    usage("bad value for " + current_key + ": " + e.what());
  }
  if (port < 0 || port > 65535) usage("--port is required (0..65535)");
  if (rate <= 0.0 || !std::isfinite(rate)) usage("--rate must be > 0");
  if (total_requests <= 0) usage("--requests must be > 0");
  if (connections <= 0) usage("--connections must be > 0");
  if (connections > total_requests) connections = total_requests;

  // Schedule every arrival up front: Poisson process, exponential gaps.
  // Seeded, so a run is reproducible end to end (same specs, same times).
  std::vector<StreamRequestSpec> roster =
      expand_stream(synthetic_stream(total_requests, seed));
  std::mt19937_64 rng(seed ^ 0x10adc0deULL);
  std::exponential_distribution<double> gap_s(rate);
  std::vector<std::vector<Shot>> plan(static_cast<std::size_t>(connections));
  double arrival_ms = 0.0;
  for (int i = 0; i < total_requests; ++i) {
    arrival_ms += gap_s(rng) * 1000.0;
    Shot shot;
    shot.spec = roster[static_cast<std::size_t>(i) % roster.size()];
    shot.spec.repeat = 1;
    if (deadline_ms > 0) shot.spec.deadline_ms = deadline_ms;
    shot.sched_ms = arrival_ms;
    plan[static_cast<std::size_t>(i) % plan.size()].push_back(shot);
  }
  std::printf(
      "offering %d requests at %.1f req/s over %d connections (~%.1f s, "
      "seed %llu)\n",
      total_requests, rate, connections, arrival_ms / 1000.0,
      static_cast<unsigned long long>(seed));

  std::vector<ConnTally> tallies(plan.size());
  const Clock::time_point start = Clock::now();
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < plan.size(); ++c) {
    threads.emplace_back([&, c] {
      ConnTally& tally = tallies[c];
      try {
        NetClient client(host, static_cast<std::uint16_t>(port), timeout_ms);
        // corr -> scheduled arrival; written by the submitter below,
        // read by this (reaper) thread.
        std::map<std::uint64_t, double> sched;
        std::mutex sched_mu;
        std::thread submitter([&] {
          for (const Shot& shot : plan[c]) {
            const auto due = start + std::chrono::duration_cast<Clock::duration>(
                                         std::chrono::duration<double, std::milli>(
                                             shot.sched_ms));
            std::this_thread::sleep_until(due);  // open loop: never waits
                                                 // for responses
            const std::uint64_t corr = client.submit(shot.spec);
            std::lock_guard<std::mutex> lk(sched_mu);
            sched.emplace(corr, shot.sched_ms);
          }
        });
        for (std::size_t n = 0; n < plan[c].size(); ++n) {
          NetClient::Outcome out = client.await_any();
          const double now_ms =
              std::chrono::duration<double, std::milli>(Clock::now() - start)
                  .count();
          double sched_ms = 0.0;
          {
            std::lock_guard<std::mutex> lk(sched_mu);
            auto it = sched.find(out.corr);
            sched_ms = it == sched.end() ? now_ms : it->second;
          }
          if (out.ok) {
            // Coordinated-omission-free: from when the request SHOULD
            // have been sent, not from when it actually was.
            tally.latencies_ms.push_back(now_ms - sched_ms);
            ++tally.completed;
          } else {
            ++tally.errors[wire_error_name(out.error.code)];
          }
        }
        submitter.join();
      } catch (const std::exception& e) {
        tally.transport_error = e.what();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start).count();

  std::vector<double> latencies;
  std::int64_t completed = 0;
  std::map<std::string, std::int64_t> errors;
  std::vector<std::string> transport_errors;
  for (const ConnTally& t : tallies) {
    latencies.insert(latencies.end(), t.latencies_ms.begin(),
                     t.latencies_ms.end());
    completed += t.completed;
    for (const auto& [name, n] : t.errors) errors[name] += n;
    if (!t.transport_error.empty())
      transport_errors.push_back(t.transport_error);
  }
  std::sort(latencies.begin(), latencies.end());
  const double p50 = percentile(latencies, 50.0);
  const double p90 = percentile(latencies, 90.0);
  const double p99 = percentile(latencies, 99.0);
  const double pmax = latencies.empty() ? 0.0 : latencies.back();
  std::int64_t errored = 0;
  for (const auto& [name, n] : errors) errored += n;
  const double error_rate =
      static_cast<double>(errored) / static_cast<double>(total_requests);
  const double achieved =
      static_cast<double>(completed) / (wall_ms / 1000.0);

  std::printf(
      "wall %.1f ms  completed %lld/%d  achieved %.1f req/s  error rate "
      "%.4f\n",
      wall_ms, static_cast<long long>(completed), total_requests, achieved,
      error_rate);
  std::printf("latency from scheduled arrival: p50 %.1f  p90 %.1f  p99 %.1f  "
              "max %.1f ms\n",
              p50, p90, p99, pmax);
  for (const auto& [name, n] : errors)
    std::printf("error %s: %lld\n", name.c_str(), static_cast<long long>(n));
  for (const std::string& e : transport_errors)
    std::printf("transport failure: %s\n", e.c_str());

  if (!json_path.empty()) {
    std::ofstream f(json_path);
    if (!f) usage("cannot write --json file");
    f << "{\n"
      << "  \"requests\": " << total_requests << ",\n"
      << "  \"rate_req_per_s\": " << rate << ",\n"
      << "  \"connections\": " << connections << ",\n"
      << "  \"seed\": " << seed << ",\n"
      << "  \"deadline_ms\": " << deadline_ms << ",\n"
      << "  \"wall_ms\": " << wall_ms << ",\n"
      << "  \"completed\": " << completed << ",\n"
      << "  \"errored\": " << errored << ",\n"
      << "  \"error_rate\": " << error_rate << ",\n"
      << "  \"achieved_req_per_s\": " << achieved << ",\n"
      << "  \"latency_p50_ms\": " << p50 << ",\n"
      << "  \"latency_p90_ms\": " << p90 << ",\n"
      << "  \"latency_p99_ms\": " << p99 << ",\n"
      << "  \"latency_max_ms\": " << pmax << ",\n"
      << "  \"transport_failures\": " << transport_errors.size() << "\n"
      << "}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (!transport_errors.empty()) return 2;
  int rc = 0;
  if (slo_p99_ms >= 0.0 && p99 > slo_p99_ms) {
    std::printf("SLO VIOLATION: p99 %.1f ms > %.1f ms\n", p99, slo_p99_ms);
    rc = 1;
  }
  if (slo_error_rate >= 0.0 && error_rate > slo_error_rate) {
    std::printf("SLO VIOLATION: error rate %.4f > %.4f\n", error_rate,
                slo_error_rate);
    rc = 1;
  }
  if (rc == 0 && (slo_p99_ms >= 0.0 || slo_error_rate >= 0.0))
    std::printf("SLO ok\n");
  return rc;
}
